"""Tables and their per-node segments.

A :class:`Table` is a schema plus a segmentation scheme plus one
:class:`Segment` per database node.  Inserted batches are routed to segments
row-by-row by the segmentation scheme; each segment stores row groups either
in memory (the default, for fast tests) or as real on-disk segment files
(used by benchmarks that charge file-system reads).

Every row also carries a hidden global row id (``_rowid``) assigned at insert
time.  Global row ids are what the ODBC path's ordered range fetches filter
on — the operation that destroys locality, as §3 of the paper describes.

Storage is MVCC'd per :mod:`repro.vertica.txn`: every rowgroup, segment
file, and WOS batch is stamped with the commit epoch that created it, each
segment carries a delete vector, and scans resolve through a
:class:`~repro.vertica.txn.epochs.Snapshot` — rows whose insert epoch is
in the snapshot's future, or whose delete epoch is at-or-before it, never
leave the segment.  ``snapshot=None`` at this layer means "no transaction
view": all committed *and* in-flight storage, all deletes applied — the
pre-MVCC behaviour, kept for standalone :class:`Segment`/:class:`Table`
use outside a cluster.  Cluster scan paths always resolve a real snapshot.
"""

from __future__ import annotations

import itertools
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import CatalogError, StorageError
from repro.storage.encoding import ColumnSchema, SqlType, coerce_to_dtype
from repro.storage.files import SegmentFile, SegmentFileWriter
from repro.storage.rowgroup import RowGroup
from repro.vertica.segmentation import SegmentationScheme
from repro.vertica.txn.delete_vector import DeleteVector, FrozenDeleteIndex
from repro.vertica.txn.wos import WosBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.telemetry import Telemetry
    from repro.vertica.txn.epochs import EpochClock, Snapshot

__all__ = ["Table", "Segment", "ROWID_COLUMN"]

ROWID_COLUMN = "_rowid"
DEFAULT_ROWGROUP_ROWS = 65_536

# Process-wide unique table ids.  A DROP TABLE / CREATE TABLE cycle under
# the same name produces a table with a fresh uid, so cache keys built from
# invalidation tokens can never alias the old table's contents.
_TABLE_UIDS = itertools.count(1)

# The epoch a ``snapshot=None`` scan reads at: beyond every stamp, so it
# sees all storage and applies every delete — exactly the pre-MVCC view.
UNBOUNDED_EPOCH = 2**62


def snapshot_epoch(snapshot: "Snapshot | None") -> int:
    return UNBOUNDED_EPOCH if snapshot is None else snapshot.epoch


class SegmentScanSet:
    """A frozen, consistent set of storage to scan: taken atomically under
    the segment's mutation lock, immune to concurrent appends, moveout
    swaps, and delete-vector updates for the lifetime of the scan."""

    __slots__ = ("rowgroups", "files", "wos", "deletes")

    def __init__(self, rowgroups: list[RowGroup], files: list[SegmentFile],
                 wos: list[WosBatch], deletes: FrozenDeleteIndex) -> None:
        self.rowgroups = rowgroups
        self.files = files
        self.wos = wos
        self.deletes = deletes


class Segment:
    """One node's slice of a table: epoch-stamped row groups plus a WOS.

    Read-optimized storage (``_memory_rowgroups`` / ``_files``) and the
    write-optimized store (``_wos``) are guarded by ``_mutation_lock``;
    scans take a :class:`SegmentScanSet` under the lock and then decode
    without it.  Scan order is always ROS rowgroups (memory, then files)
    followed by WOS batches — the Tuple Mover's moveout flushes a *prefix*
    of the WOS to the *end* of the ROS, which preserves that order exactly.
    """

    def __init__(
        self,
        table_name: str,
        node_index: int,
        schema: list[ColumnSchema],
        data_dir: Path | None = None,
        codec: str = "zlib",
    ) -> None:
        self.table_name = table_name
        self.node_index = node_index
        self.schema = list(schema)
        self.codec = codec
        self._mutation_lock = threading.RLock()
        self._memory_rowgroups: list[RowGroup] = []
        self._memory_epochs: list[int] = []
        self._files: list[SegmentFile] = []
        self._file_epochs: list[int] = []
        self._wos: list[WosBatch] = []
        self.delete_vector = DeleteVector()
        self._data_dir = data_dir
        self._file_counter = 0
        if data_dir is not None:
            data_dir.mkdir(parents=True, exist_ok=True)

    @property
    def on_disk(self) -> bool:
        return self._data_dir is not None

    @property
    def row_count(self) -> int:
        """Physical rows stored (ROS + WOS), ignoring delete vectors."""
        with self._mutation_lock:
            memory_rows = sum(rg.row_count for rg in self._memory_rowgroups)
            disk_rows = sum(f.row_count for f in self._files)
            wos = sum(batch.rows for batch in self._wos)
        return memory_rows + disk_rows + wos

    @property
    def wos_rows(self) -> int:
        with self._mutation_lock:
            return sum(batch.rows for batch in self._wos)

    @property
    def rowgroup_count(self) -> int:
        """Scannable storage units: ROS rowgroups plus unflushed WOS batches.

        PARTITION BEST sizes its fan-out from this, so a table with live
        WOS trickle data plans the same parallelism as the equivalent
        table whose batches were already moved out.
        """
        with self._mutation_lock:
            return (len(self._memory_rowgroups)
                    + sum(f.rowgroup_count for f in self._files)
                    + len(self._wos))

    @property
    def compressed_size(self) -> int:
        """Approximate on-disk footprint of this segment in bytes."""
        with self._mutation_lock:
            memory = sum(rg.compressed_size for rg in self._memory_rowgroups)
            disk = sum(f.file_size for f in self._files)
        return memory + disk

    def visible_row_count(self, snapshot: "Snapshot | None" = None) -> int:
        """Rows a scan at ``snapshot`` yields from this segment.

        Inserted-and-visible minus deleted-and-visible; the subtraction is
        exact because a delete epoch is never smaller than its row's insert
        epoch (only visible rows can be deleted).
        """
        cap = snapshot_epoch(snapshot)
        with self._mutation_lock:
            ros = sum(
                rg.row_count
                for rg, e in zip(self._memory_rowgroups, self._memory_epochs)
                if e <= cap
            )
            disk = sum(
                f.row_count
                for f, e in zip(self._files, self._file_epochs)
                if e <= cap
            )
            wos = sum(b.rows for b in self._wos if b.epoch <= cap)
            deletes = self.delete_vector.frozen()
        return ros + disk + wos - deletes.count_at(cap)

    # -- writes ------------------------------------------------------------

    def append(self, arrays: dict[str, np.ndarray], epoch: int = 0) -> None:
        """Append one batch (already routed to this segment) as row groups.

        The batch is encoded outside the mutation lock (compression is the
        expensive part) and spliced in under it, stamped with ``epoch``.
        """
        rows = self._validated_rows(arrays)
        if rows == 0:
            return
        rowgroups = self._encode_rowgroups(arrays, rows)
        if self.on_disk:
            segment_file = self._write_segment_file(rowgroups)
            with self._mutation_lock:
                self._files.append(segment_file)
                self._file_epochs.append(epoch)
        else:
            with self._mutation_lock:
                self._memory_rowgroups.extend(rowgroups)
                self._memory_epochs.extend([epoch] * len(rowgroups))

    def append_wos(self, arrays: dict[str, np.ndarray], epoch: int) -> int:
        """Land one trickle-insert batch in the WOS, stamped with ``epoch``."""
        rows = self._validated_rows(arrays)
        if rows == 0:
            return 0
        batch = WosBatch(epoch, {n: np.asarray(a) for n, a in arrays.items()})
        with self._mutation_lock:
            self._wos.append(batch)
        return rows

    def rollback_epoch(self, epoch: int) -> None:
        """Remove all storage stamped ``epoch`` (a failed insert's debris).

        Only ever called for a pending epoch — no snapshot can have seen
        the rows, so dropping them is invisible to every reader.
        """
        if epoch <= 0:
            return
        with self._mutation_lock:
            keep = [i for i, e in enumerate(self._memory_epochs) if e != epoch]
            if len(keep) != len(self._memory_epochs):
                self._memory_rowgroups = [self._memory_rowgroups[i] for i in keep]
                self._memory_epochs = [self._memory_epochs[i] for i in keep]
            keep_files = [i for i, e in enumerate(self._file_epochs) if e != epoch]
            if len(keep_files) != len(self._file_epochs):
                self._files = [self._files[i] for i in keep_files]
                self._file_epochs = [self._file_epochs[i] for i in keep_files]
            self._wos = [b for b in self._wos if b.epoch != epoch]

    def _validated_rows(self, arrays: dict[str, np.ndarray]) -> int:
        if not arrays:
            return 0
        lengths = {len(np.asarray(a)) for a in arrays.values()}
        if len(lengths) != 1:
            raise StorageError("ragged arrays appended to segment")
        (rows,) = lengths
        return rows

    def _encode_rowgroups(self, arrays: dict[str, np.ndarray],
                          rows: int) -> list[RowGroup]:
        rowgroups = []
        for start in range(0, rows, DEFAULT_ROWGROUP_ROWS):
            stop = min(start + DEFAULT_ROWGROUP_ROWS, rows)
            chunk = {name: np.asarray(arr)[start:stop]
                     for name, arr in arrays.items()}
            rowgroups.append(
                RowGroup.from_arrays(self.schema, chunk, codec=self.codec)
            )
        return rowgroups

    def _write_segment_file(self, rowgroups: list[RowGroup]) -> SegmentFile:
        with self._mutation_lock:
            counter = self._file_counter
            self._file_counter += 1
        path = self._data_dir / f"{self.table_name}.seg{counter:06d}.bin"
        with SegmentFileWriter(path, self.schema) as writer:
            for rowgroup in rowgroups:
                writer.append(rowgroup)
        return SegmentFile(path)

    # -- reads -------------------------------------------------------------

    def capture(self, snapshot: "Snapshot | None" = None,
                since_epoch: int = 0) -> SegmentScanSet:
        """Atomically freeze the storage a scan at ``snapshot`` must read.

        ``since_epoch`` narrows the capture to storage stamped **after** that
        epoch — the delta window ``(since_epoch, snapshot]`` incremental model
        refresh folds over.  The default 0 precedes every real stamp, so plain
        scans are unchanged.
        """
        cap = snapshot_epoch(snapshot)
        since = since_epoch
        with self._mutation_lock:
            rowgroups = [
                rg for rg, e in zip(self._memory_rowgroups, self._memory_epochs)
                if since < e <= cap
            ]
            files = [
                f for f, e in zip(self._files, self._file_epochs)
                if since < e <= cap
            ]
            wos = [b for b in self._wos if since < b.epoch <= cap]
            deletes = self.delete_vector.frozen()
        return SegmentScanSet(rowgroups, files, wos, deletes)

    def delete_epochs_between(self, since_epoch: int,
                              snapshot: "Snapshot | None" = None) -> bool:
        """Whether any delete committed in the window ``(since_epoch, snapshot]``.

        The incremental-refresh guard: a delete in the window can remove rows
        the model already folded in, which a pure insert-delta cannot express,
        so the refresher falls back to a full refit.
        """
        cap = snapshot_epoch(snapshot)
        frozen = self.delete_vector.frozen()
        if not len(frozen):
            return False
        return bool(((frozen.epochs > since_epoch)
                     & (frozen.epochs <= cap)).any())

    def iter_rowgroups(self, columns: list[str] | None = None,
                       snapshot: "Snapshot | None" = None) -> Iterator[RowGroup]:
        """Yield row groups; disk-backed groups are read from their files.

        Without a snapshot this is raw physical ROS access (WOS batches and
        delete vectors ignored) — storage-layer plumbing only.  With a
        snapshot, surviving rows are re-encoded into fresh row groups so
        the caller sees exactly the transactional view.
        """
        if snapshot is None:
            with self._mutation_lock:
                memory = list(self._memory_rowgroups)
                files = list(self._files)
            yield from memory
            for segment_file in files:
                yield from segment_file.iter_rowgroups(columns)
            return
        names = columns if columns is not None else [c.name for c in self.schema]
        schema = [self._schema_column(name) for name in names]
        for decoded in self.iter_batches(names, snapshot=snapshot):
            yield RowGroup.from_arrays(schema, decoded, codec=self.codec)

    def iter_batches(self, columns: list[str] | None = None,
                     ranges: dict | None = None,
                     prune_counter=None,
                     snapshot: "Snapshot | None" = None,
                     since_epoch: int = 0,
                     ) -> Iterator[dict[str, np.ndarray]]:
        """Stream the segment one decoded row group / WOS batch at a time.

        This is the source of the streaming execution pipeline: each yielded
        dict holds the requested columns of exactly one surviving row group,
        so peak memory is O(row group), not O(segment).  ``ranges`` maps
        column names to :class:`~repro.vertica.pruning.ColumnRange`
        envelopes; row groups whose zone maps exclude any constrained column
        are skipped without decompressing a single block (``prune_counter``
        is called with the number of skipped row groups).

        ``snapshot`` fixes the transactional view: storage stamped after the
        snapshot epoch is not read, WOS batches visible at it are unioned in
        after the ROS, and rows the frozen delete index marks deleted
        at-or-before it are filtered out.
        """
        names = columns if columns is not None else [c.name for c in self.schema]
        scan = self.capture(snapshot, since_epoch=since_epoch)
        cap = snapshot_epoch(snapshot)
        constrained = self._constrained_columns(ranges)
        filtering = len(scan.deletes) > 0
        read_names = list(names)
        if filtering and ROWID_COLUMN not in read_names:
            read_names.append(ROWID_COLUMN)

        def resolve(decoded: dict[str, np.ndarray]) -> dict[str, np.ndarray] | None:
            if not filtering:
                return decoded
            keep = scan.deletes.keep_mask(decoded[ROWID_COLUMN], cap)
            if keep.all():
                return {name: decoded[name] for name in names}
            if not keep.any():
                return None
            return {name: decoded[name][keep] for name in names}

        for rowgroup in scan.rowgroups:
            if constrained and not rowgroup.might_match(ranges, constrained):
                if prune_counter is not None:
                    prune_counter(1)
                continue
            batch = resolve(rowgroup.read(read_names))
            if batch is not None:
                yield batch
        for segment_file in scan.files:
            for index in range(segment_file.rowgroup_count):
                if constrained and not self._zone_maps_match(
                        lambda col, i=index, f=segment_file: f.read_block(i, col),
                        constrained, ranges):
                    if prune_counter is not None:
                        prune_counter(1)
                    continue
                batch = resolve(
                    segment_file.read_rowgroup(index, read_names).read(read_names)
                )
                if batch is not None:
                    yield batch
        for wos_batch in scan.wos:
            batch = resolve(wos_batch.read(read_names))
            if batch is not None:
                yield batch

    def typed_empty(self, columns: list[str] | None = None) -> dict[str, np.ndarray]:
        """Zero-row arrays carrying the schema's declared dtypes."""
        names = columns if columns is not None else [c.name for c in self.schema]
        return {
            name: np.empty(0, dtype=self._schema_column(name).numpy_dtype)
            for name in names
        }

    def read_columns(self, columns: list[str] | None = None,
                     ranges: dict | None = None,
                     prune_counter=None,
                     snapshot: "Snapshot | None" = None,
                     since_epoch: int = 0,
                     ) -> dict[str, np.ndarray]:
        """Materialize the segment (the given columns) as arrays.

        The eager counterpart of :meth:`iter_batches` (same pruning,
        snapshot resolution, and telemetry behaviour), kept for the
        ``mode="eager"`` pipeline fallback and for whole-segment consumers
        like the ODBC path.
        """
        names = columns if columns is not None else [c.name for c in self.schema]
        pieces: dict[str, list[np.ndarray]] = {name: [] for name in names}
        for decoded in self.iter_batches(names, ranges, prune_counter,
                                         snapshot=snapshot,
                                         since_epoch=since_epoch):
            for name in names:
                pieces[name].append(decoded[name])
        empty = None
        out = {}
        for name in names:
            if pieces[name]:
                out[name] = np.concatenate(pieces[name])
            else:
                empty = empty if empty is not None else self.typed_empty(names)
                out[name] = empty[name]
        return out

    # -- Tuple Mover entry points ------------------------------------------

    def moveout(self, committed_epoch: int, ahm: int = 0) -> int:
        """Flush the committed prefix of the WOS into ROS storage.

        Only a *prefix* with epochs ≤ ``committed_epoch`` moves (pending
        epochs and everything after them stay), and it lands at the end of
        the ROS — so a scan at any epoch sees the same rows in the same
        order before and after the flush.  Consecutive batches whose epochs
        are all ≤ ``ahm`` are compacted into shared row groups stamped with
        their max epoch (no valid snapshot can distinguish them); younger
        batches keep per-epoch row groups so ``AT EPOCH`` stays exact.

        Returns the number of rows flushed.
        """
        with self._mutation_lock:
            prefix: list[WosBatch] = []
            for batch in self._wos:
                if batch.epoch > committed_epoch:
                    break
                prefix.append(batch)
        if not prefix:
            return 0
        groups = self._group_wos_batches(prefix, ahm)
        built: list[tuple[int, list[RowGroup]]] = []
        for epoch, batches in groups:
            arrays = _concat_stored(batches)
            rows = len(next(iter(arrays.values())))
            built.append((epoch, self._encode_rowgroups(arrays, rows)))
        if self.on_disk:
            files = [(epoch, self._write_segment_file(rowgroups))
                     for epoch, rowgroups in built]
        with self._mutation_lock:
            current = self._wos[:len(prefix)]
            if len(current) != len(prefix) or any(
                    a is not b for a, b in zip(current, prefix)):
                return 0  # lost a race with another mover pass; retry later
            del self._wos[:len(prefix)]
            if self.on_disk:
                for epoch, segment_file in files:
                    self._files.append(segment_file)
                    self._file_epochs.append(epoch)
            else:
                for epoch, rowgroups in built:
                    self._memory_rowgroups.extend(rowgroups)
                    self._memory_epochs.extend([epoch] * len(rowgroups))
        return sum(batch.rows for batch in prefix)

    @staticmethod
    def _group_wos_batches(prefix: list[WosBatch],
                           ahm: int) -> list[tuple[int, list[WosBatch]]]:
        groups: list[tuple[int, list[WosBatch]]] = []
        for batch in prefix:
            if groups:
                epoch, members = groups[-1]
                mergeable = (batch.epoch <= ahm and epoch <= ahm) \
                    or batch.epoch == epoch
                if mergeable:
                    groups[-1] = (max(epoch, batch.epoch), members + [batch])
                    continue
            groups.append((batch.epoch, [batch]))
        return groups

    def has_mergeout_work(self, ahm: int, small_rows: int,
                          min_run: int = 2) -> bool:
        """Cheap pre-check so the background mover only opens a
        ``txn.mergeout`` span (and walks the candidate machinery) when a
        pass could plausibly do something.  Conservative: may return True
        for a pass that ends up merging nothing."""
        frozen = self.delete_vector.frozen()
        if len(frozen) and (frozen.epochs <= ahm).any():
            return True
        with self._mutation_lock:
            for items, epochs, rows_of in (
                (self._memory_rowgroups, self._memory_epochs,
                 lambda rg: rg.row_count),
                (self._files, self._file_epochs, lambda f: f.row_count),
            ):
                run_small = 0
                for item, epoch in zip(items, epochs):
                    if epoch <= ahm:
                        if rows_of(item) < small_rows:
                            run_small += 1
                            if run_small >= min_run:
                                return True
                    else:
                        run_small = 0
        return False

    def mergeout(self, ahm: int, small_rows: int,
                 min_run: int = 2) -> tuple[int, int]:
        """Compact small adjacent row groups and purge ancient deletes.

        Only storage stamped at-or-before the AHM is touched: merged row
        groups take the max epoch of their run (indistinguishable to every
        snapshot ≥ AHM), and rows whose delete epoch is ≤ AHM — invisible
        to every snapshot a query may still take — are dropped from the
        rewrite and their delete-vector entries purged in the same critical
        section.  A scan at any valid epoch is bit-identical before and
        after.

        Returns ``(bytes_rewritten, rows_purged)``.
        """
        frozen = self.delete_vector.frozen()
        purgeable = frozen.rowids[frozen.epochs <= ahm]
        bytes_rewritten = 0
        rows_purged = 0
        done_memory, done_files = False, False
        while not (done_memory and done_files):
            if not done_memory:
                result = self._mergeout_memory_once(ahm, small_rows, min_run,
                                                    purgeable)
                if result is None:
                    done_memory = True
                else:
                    bytes_rewritten += result[0]
                    rows_purged += result[1]
            elif not done_files:
                result = self._mergeout_files_once(ahm, small_rows, min_run,
                                                   purgeable)
                if result is None:
                    done_files = True
                else:
                    bytes_rewritten += result[0]
                    rows_purged += result[1]
        return bytes_rewritten, rows_purged

    def _mergeout_runs(self, items: list, epochs: list[int], ahm: int,
                       small_rows: int, min_run: int,
                       rows_of) -> list[tuple[int, list]]:
        """Maximal runs of adjacent mergeable storage units.

        A run qualifies for rewrite when it holds ≥ ``min_run`` units
        smaller than ``small_rows`` (compaction) — purge-only rewrites are
        decided later, once the run's rowids have been decoded.
        """
        runs: list[tuple[int, list]] = []
        start, run = 0, []
        for i, (item, epoch) in enumerate(zip(items, epochs)):
            if epoch <= ahm:
                if not run:
                    start = i
                run.append(item)
            else:
                if run:
                    runs.append((start, run))
                run = []
        if run:
            runs.append((start, run))
        selected = []
        for start, members in runs:
            small = sum(1 for m in members if rows_of(m) < small_rows)
            if small >= min_run and len(members) >= 2:
                selected.append((start, members))
        return selected

    def _purge_only_runs(self, items: list, epochs: list[int], ahm: int,
                         purgeable: np.ndarray,
                         decode_rowids) -> list[tuple[int, list]]:
        """Single units (any size) that hold rows purgeable behind the AHM."""
        selected = []
        for i, (item, epoch) in enumerate(zip(items, epochs)):
            if epoch > ahm:
                continue
            rowids = decode_rowids(item)
            pos = np.searchsorted(purgeable, rowids)
            pos = np.minimum(pos, len(purgeable) - 1)
            if (purgeable[pos] == rowids).any():
                selected.append((i, [item]))
        return selected

    def _mergeout_memory_once(self, ahm, small_rows, min_run, purgeable):
        with self._mutation_lock:
            items = list(self._memory_rowgroups)
            epochs = list(self._memory_epochs)
        candidates = self._mergeout_runs(
            items, epochs, ahm, small_rows, min_run,
            rows_of=lambda rg: rg.row_count)
        if not candidates and len(purgeable):
            candidates = self._purge_only_runs(
                items, epochs, ahm, purgeable,
                decode_rowids=lambda rg: rg.read([ROWID_COLUMN])[ROWID_COLUMN])
        for start, members in candidates:
            merged = self._rewrite_run(members, ahm, purgeable)
            if merged is None:
                continue
            rowgroups, purged_rowids, nbytes = merged
            epoch = max(epochs[start:start + len(members)])
            with self._mutation_lock:
                current = self._memory_rowgroups[start:start + len(members)]
                if len(current) != len(members) or any(
                        a is not b for a, b in zip(current, members)):
                    continue  # storage moved under us; try again next pass
                self._memory_rowgroups[start:start + len(members)] = rowgroups
                self._memory_epochs[start:start + len(members)] = \
                    [epoch] * len(rowgroups)
                self.delete_vector.purge(purged_rowids)
            return nbytes, len(purged_rowids)
        return None

    def _mergeout_files_once(self, ahm, small_rows, min_run, purgeable):
        with self._mutation_lock:
            items = list(self._files)
            epochs = list(self._file_epochs)
        candidates = self._mergeout_runs(
            items, epochs, ahm, small_rows, min_run,
            rows_of=lambda f: f.row_count)
        if not candidates and len(purgeable):
            candidates = self._purge_only_runs(
                items, epochs, ahm, purgeable,
                decode_rowids=lambda f: np.concatenate([
                    rg.read([ROWID_COLUMN])[ROWID_COLUMN]
                    for rg in f.iter_rowgroups([ROWID_COLUMN])
                ]) if f.rowgroup_count else np.empty(0, dtype=np.int64))
        for start, members in candidates:
            merged = self._rewrite_file_run(members, ahm, purgeable)
            if merged is None:
                continue
            segment_file, purged_rowids, nbytes = merged
            epoch = max(epochs[start:start + len(members)])
            with self._mutation_lock:
                current = self._files[start:start + len(members)]
                if len(current) != len(members) or any(
                        a is not b for a, b in zip(current, members)):
                    continue
                # Old segment files leave the scan set but are not unlinked:
                # a concurrent capture may still hold a reference mid-read.
                # Space is reclaimed when the segment's directory goes away.
                self._files[start:start + len(members)] = [segment_file]
                self._file_epochs[start:start + len(members)] = [epoch]
                self.delete_vector.purge(purged_rowids)
            return nbytes, len(purged_rowids)
        return None

    def _rewrite_run(self, members: list[RowGroup], ahm: int,
                     purgeable: np.ndarray):
        names = [c.name for c in self.schema]
        arrays = _concat_stored([_RowGroupReader(rg, names) for rg in members])
        return self._filter_and_encode(arrays, ahm, purgeable)

    def _rewrite_file_run(self, members: list[SegmentFile], ahm: int,
                          purgeable: np.ndarray):
        names = [c.name for c in self.schema]
        decoded = []
        for segment_file in members:
            for rowgroup in segment_file.iter_rowgroups(names):
                decoded.append(_RowGroupReader(rowgroup, names))
        if not decoded:
            return None
        arrays = _concat_stored(decoded)
        result = self._filter_and_encode(arrays, ahm, purgeable)
        if result is None:
            return None
        rowgroups, purged_rowids, _ = result
        segment_file = self._write_segment_file(rowgroups)
        return segment_file, purged_rowids, segment_file.file_size

    def _filter_and_encode(self, arrays: dict[str, np.ndarray], ahm: int,
                           purgeable: np.ndarray):
        rowids = arrays[ROWID_COLUMN]
        if len(purgeable):
            pos = np.searchsorted(purgeable, rowids)
            pos = np.minimum(pos, max(len(purgeable) - 1, 0))
            purge_mask = purgeable[pos] == rowids
        else:
            purge_mask = np.zeros(len(rowids), dtype=bool)
        if purge_mask.any():
            arrays = {name: arr[~purge_mask] for name, arr in arrays.items()}
        purged_rowids = rowids[purge_mask]
        rows = len(arrays[ROWID_COLUMN])
        rowgroups = self._encode_rowgroups(arrays, rows) if rows else []
        nbytes = sum(rg.compressed_size for rg in rowgroups)
        return rowgroups, purged_rowids, nbytes

    # -- helpers -----------------------------------------------------------

    def _constrained_columns(self, ranges: dict | None) -> list[str]:
        """The subset of range constraints that name columns of this segment."""
        if not ranges:
            return []
        schema_names = {c.name for c in self.schema}
        return [name for name in ranges if name in schema_names]

    @staticmethod
    def _zone_maps_match(block_for, constrained: list[str], ranges: dict) -> bool:
        """False when any constrained column's zone map excludes the range."""
        for name in constrained:
            envelope = ranges[name]
            block = block_for(name)
            if not block.might_contain(envelope.low, envelope.high):
                return False
        return True

    def _schema_column(self, name: str) -> ColumnSchema:
        for column in self.schema:
            if column.name == name:
                return column
        raise StorageError(f"segment schema has no column {name!r}")


class _RowGroupReader:
    """Adapts a RowGroup to the ``.arrays`` shape ``_concat_stored`` eats."""

    __slots__ = ("arrays",)

    def __init__(self, rowgroup: RowGroup, names: list[str]) -> None:
        self.arrays = rowgroup.read(names)


def _concat_stored(batches: list) -> dict[str, np.ndarray]:
    names = list(batches[0].arrays)
    if len(batches) == 1:
        return dict(batches[0].arrays)
    return {
        name: np.concatenate([b.arrays[name] for b in batches])
        for name in names
    }


class Table:
    """A segmented, columnar table."""

    def __init__(
        self,
        name: str,
        schema: list[ColumnSchema],
        segmentation: SegmentationScheme,
        node_count: int,
        data_dir: Path | None = None,
        codec: str = "zlib",
        k_safety: int = 0,
    ) -> None:
        if not schema:
            raise CatalogError(f"table {name!r} requires at least one column")
        names = [c.name for c in schema]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name!r}: {names}")
        if ROWID_COLUMN in names:
            raise CatalogError(f"column name {ROWID_COLUMN!r} is reserved")
        self.name = name
        self.user_schema = list(schema)
        # The stored schema appends the hidden global rowid column.
        self.stored_schema = list(schema) + [
            ColumnSchema(ROWID_COLUMN, SqlType.INTEGER)
        ]
        self.segmentation = segmentation
        self.node_count = node_count
        self._lock = threading.Lock()
        self._next_rowid = 0
        self.uid = next(_TABLE_UIDS)
        # Invalidation state for epoch-keyed result caching: the commit
        # epoch of the latest mutation and a count of Tuple Mover purges
        # (purges rewrite storage without allocating an epoch).
        self._mutation_epoch = 0
        self._purge_count = 0
        # Bound by the owning cluster; a standalone Table has no epoch
        # clock and stamps everything with epoch 0 (always visible).
        self.epochs: "EpochClock | None" = None
        self.telemetry: "Telemetry | None" = None
        # Serializes DELETE/UPDATE statements against each other (write-
        # write conflict resolution is first-wins via the delete vector,
        # but interleaved collect/apply phases would double-apply SETs).
        self.write_lock = threading.Lock()
        if k_safety not in (0, 1):
            raise CatalogError(f"k_safety must be 0 or 1, got {k_safety}")
        if k_safety == 1 and node_count < 2:
            raise CatalogError("k_safety=1 requires at least 2 nodes")
        self.k_safety = k_safety
        self.segments = [
            Segment(
                name,
                node,
                self.stored_schema,
                data_dir=(data_dir / f"node{node:02d}" if data_dir else None),
                codec=codec,
            )
            for node in range(node_count)
        ]
        # Buddy projections (Vertica's k-safety): segment i's replica lives
        # on node (i + 1) % n, so any single node failure loses no data.
        self.buddy_segments: list[Segment] | None = None
        if k_safety == 1:
            self.buddy_segments = [
                Segment(
                    f"{name}_buddy",
                    (node + 1) % node_count,
                    self.stored_schema,
                    data_dir=(
                        data_dir / f"node{(node + 1) % node_count:02d}"
                        if data_dir else None
                    ),
                    codec=codec,
                )
                for node in range(node_count)
            ]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.user_schema]

    @property
    def row_count(self) -> int:
        return sum(segment.row_count for segment in self.segments)

    @property
    def compressed_size(self) -> int:
        return sum(segment.compressed_size for segment in self.segments)

    def column(self, name: str) -> ColumnSchema:
        for column in self.user_schema:
            if column.name == name:
                return column
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.user_schema)

    def note_commit(self, epoch: int) -> None:
        """Record ``epoch`` as the latest mutation of this table.

        Mutators call this **before** ``EpochClock.commit`` makes the epoch
        visible, so any reader whose snapshot includes the new data observes
        the bumped invalidation token afterwards (the clock's internal lock
        orders the token write before the watermark advance).
        """
        with self._lock:
            if epoch > self._mutation_epoch:
                self._mutation_epoch = epoch

    def note_purge(self) -> None:
        """Record a Tuple Mover purge (storage rewritten with no epoch)."""
        with self._lock:
            self._purge_count += 1

    def invalidation_token(self) -> tuple[int, int, int]:
        """``(uid, last mutation epoch, purge count)`` — changes whenever a
        committed INSERT/DELETE/UPDATE or a mergeout purge could alter what
        a latest-snapshot scan of this table returns."""
        with self._lock:
            return (self.uid, self._mutation_epoch, self._purge_count)

    def resolve_snapshot(self, at_epoch: int | None = None) -> "Snapshot | None":
        """The snapshot a statement should read at (``None`` → latest
        committed).  Tables outside a cluster have no epoch clock and read
        the raw physical view."""
        if self.epochs is None:
            return None
        return self.epochs.snapshot(at_epoch)

    def all_segments(self) -> list[Segment]:
        if self.buddy_segments is None:
            return list(self.segments)
        return list(self.segments) + list(self.buddy_segments)

    def insert(self, arrays: dict[str, np.ndarray], direct: bool = True,
               epoch: int | None = None) -> int:
        """Insert a batch of rows given as per-column arrays.

        Returns the number of rows inserted.  Thread-safe; rows receive
        consecutive global row ids in insertion order, and the whole batch
        is stamped with **one** commit epoch — a concurrent scan (which
        reads at the committed watermark) sees either none of the batch or
        all of it, never a torn prefix.

        ``direct=True`` (bulk loads) encodes straight into ROS rowgroups;
        ``direct=False`` (trickle INSERTs) lands in the per-segment WOS for
        the Tuple Mover to flush later.  Passing ``epoch`` enrolls the
        insert in a caller-managed transaction (UPDATE's reinsert path)
        instead of allocating and committing its own.
        """
        missing = [c.name for c in self.user_schema if c.name not in arrays]
        if missing:
            raise CatalogError(f"insert into {self.name!r} missing columns {missing}")
        extra = [k for k in arrays if not self.has_column(k)]
        if extra:
            raise CatalogError(f"insert into {self.name!r} has unknown columns {extra}")
        coerced = {
            c.name: coerce_to_dtype(np.atleast_1d(np.asarray(arrays[c.name])), c.sql_type)
            for c in self.user_schema
        }
        lengths = {name: len(arr) for name, arr in coerced.items()}
        if len(set(lengths.values())) != 1:
            raise CatalogError(f"ragged insert into {self.name!r}: {lengths}")
        rows = next(iter(lengths.values()))
        if rows == 0:
            return 0
        with self._lock:
            start_rowid = self._next_rowid
            self._next_rowid += rows
        assignment = self.segmentation.assign(
            coerced, rows, start_rowid, self.node_count
        )
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (rows,):
            raise CatalogError("segmentation returned a malformed assignment")
        if ((assignment < 0) | (assignment >= self.node_count)).any():
            raise CatalogError("segmentation assigned a row to a nonexistent node")
        rowids = np.arange(start_rowid, start_rowid + rows, dtype=np.int64)
        own_epoch = epoch is None and self.epochs is not None
        if epoch is not None:
            commit_epoch = epoch
        elif self.epochs is not None:
            commit_epoch = self.epochs.begin()
        else:
            commit_epoch = 0
        try:
            for node in range(self.node_count):
                mask = assignment == node
                if not mask.any():
                    continue
                batch = {name: arr[mask] for name, arr in coerced.items()}
                batch[ROWID_COLUMN] = rowids[mask]
                targets = [self.segments[node]]
                if self.buddy_segments is not None:
                    targets.append(self.buddy_segments[node])
                for segment in targets:
                    if direct:
                        segment.append(batch, epoch=commit_epoch)
                    else:
                        segment.append_wos(batch, epoch=commit_epoch)
        except BaseException:
            for segment in self.all_segments():
                segment.rollback_epoch(commit_epoch)
            if own_epoch:
                self.epochs.abort(commit_epoch)
            raise
        if own_epoch:
            self.note_commit(commit_epoch)
            self.epochs.commit(commit_epoch)
        if not direct and self.telemetry is not None:
            self.telemetry.gauge_add("wos_rows", rows)
        return rows

    def insert_rows(self, rows: list[list]) -> int:
        """Insert rows given positionally (INSERT ... VALUES path).

        Trickle inserts land in the WOS; the Tuple Mover flushes them to
        ROS rowgroups in bulk (moveout) instead of encoding a compressed
        rowgroup per statement.
        """
        if not rows:
            return 0
        width = len(self.user_schema)
        for row in rows:
            if len(row) != width:
                raise CatalogError(
                    f"row has {len(row)} values, table {self.name!r} has {width} columns"
                )
        arrays = {}
        for i, column in enumerate(self.user_schema):
            values = [row[i] for row in rows]
            if column.sql_type is SqlType.VARCHAR:
                arrays[column.name] = np.asarray(values, dtype=object)
            else:
                arrays[column.name] = np.asarray(values)
        return self.insert(arrays, direct=False)

    def segment_row_counts(self, snapshot: "Snapshot | None" = None) -> list[int]:
        """Visible rows per node segment — the distribution VFT's locality
        policy mirrors into Distributed R partitions.

        Resolves at the latest committed snapshot by default (when the
        table has an epoch clock), so a caller racing a concurrent insert
        sees whole committed batches, never a torn prefix.
        """
        if snapshot is None and self.epochs is not None:
            snapshot = self.epochs.snapshot()
        return [segment.visible_row_count(snapshot) for segment in self.segments]

    def scan_node(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None, snapshot: "Snapshot | None" = None,
    ) -> dict[str, np.ndarray]:
        """Read one node's segment (used by UDF fan-out and transfers),
        optionally pruning row groups via zone maps (``ranges``)."""
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        return self.segments[node].read_columns(
            read_names, ranges=ranges, prune_counter=prune_counter,
            snapshot=snapshot)

    def iter_node_batches(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None, replica: bool = False,
        snapshot: "Snapshot | None" = None,
    ) -> Iterator[dict[str, np.ndarray]]:
        """Stream one node's segment (or its buddy replica) rowgroup-wise.

        The streaming analog of :meth:`scan_node` / :meth:`scan_node_replica`;
        batches arrive in storage order, so concatenating them reproduces the
        eager scan exactly.
        """
        if replica and self.buddy_segments is None:
            raise CatalogError(
                f"table {self.name!r} has no buddy projections (k_safety=0)"
            )
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        segment = (self.buddy_segments if replica else self.segments)[node]
        return segment.iter_batches(read_names, ranges=ranges,
                                    prune_counter=prune_counter,
                                    snapshot=snapshot)

    def buddy_host(self, node: int) -> int | None:
        """Node holding the buddy replica of ``node``'s segment (k-safety)."""
        if self.buddy_segments is None:
            return None
        return (node + 1) % self.node_count

    def scan_node_replica(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None, snapshot: "Snapshot | None" = None,
    ) -> dict[str, np.ndarray]:
        """Read the buddy replica of ``node``'s segment."""
        if self.buddy_segments is None:
            raise CatalogError(
                f"table {self.name!r} has no buddy projections (k_safety=0)"
            )
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        return self.buddy_segments[node].read_columns(
            read_names, ranges=ranges, prune_counter=prune_counter,
            snapshot=snapshot)

    def scan_all(self, columns: list[str] | None = None,
                 snapshot: "Snapshot | None" = None) -> dict[str, np.ndarray]:
        """Read the whole table, in arbitrary (segment) order."""
        names = columns if columns is not None else self.column_names
        if snapshot is None and self.epochs is not None:
            snapshot = self.epochs.snapshot()
        parts = [self.scan_node(node, names, snapshot=snapshot)
                 for node in range(self.node_count)]
        return {
            name: np.concatenate([p[name] for p in parts]) if parts else np.empty(0)
            for name in names
        }

    def scan_delta(self, columns: list[str] | None = None,
                   since_epoch: int = 0,
                   snapshot: "Snapshot | None" = None) -> dict[str, np.ndarray]:
        """Rows inserted in ``(since_epoch, snapshot]`` and still visible.

        The snapshot-delta query incremental model refresh runs: only
        storage stamped after ``since_epoch`` is decoded, so the cost scales
        with the trickle delta, not the table.  Deletes at-or-before the
        snapshot are applied to the delta rows as in a plain scan; use
        :meth:`has_deletes_between` to detect deletes the delta cannot
        express (rows the *old* window lost).
        """
        names = columns if columns is not None else self.column_names
        if snapshot is None and self.epochs is not None:
            snapshot = self.epochs.snapshot()
        parts = [
            segment.read_columns(names, snapshot=snapshot,
                                 since_epoch=since_epoch)
            for segment in self.segments
        ]
        return {
            name: np.concatenate([p[name] for p in parts]) if parts else np.empty(0)
            for name in names
        }

    def has_deletes_between(self, since_epoch: int,
                            snapshot: "Snapshot | None" = None) -> bool:
        """Whether any segment committed a delete in ``(since_epoch, snapshot]``."""
        if snapshot is None and self.epochs is not None:
            snapshot = self.epochs.snapshot()
        return any(
            segment.delete_epochs_between(since_epoch, snapshot)
            for segment in self.segments
        )
