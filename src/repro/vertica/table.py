"""Tables and their per-node segments.

A :class:`Table` is a schema plus a segmentation scheme plus one
:class:`Segment` per database node.  Inserted batches are routed to segments
row-by-row by the segmentation scheme; each segment stores row groups either
in memory (the default, for fast tests) or as real on-disk segment files
(used by benchmarks that charge file-system reads).

Every row also carries a hidden global row id (``_rowid``) assigned at insert
time.  Global row ids are what the ODBC path's ordered range fetches filter
on — the operation that destroys locality, as §3 of the paper describes.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import CatalogError, StorageError
from repro.storage.encoding import ColumnSchema, SqlType, coerce_to_dtype
from repro.storage.files import SegmentFile, SegmentFileWriter
from repro.storage.rowgroup import RowGroup
from repro.vertica.segmentation import SegmentationScheme

__all__ = ["Table", "Segment", "ROWID_COLUMN"]

ROWID_COLUMN = "_rowid"
DEFAULT_ROWGROUP_ROWS = 65_536


class Segment:
    """One node's slice of a table: an append-only list of row groups."""

    def __init__(
        self,
        table_name: str,
        node_index: int,
        schema: list[ColumnSchema],
        data_dir: Path | None = None,
        codec: str = "zlib",
    ) -> None:
        self.table_name = table_name
        self.node_index = node_index
        self.schema = list(schema)
        self.codec = codec
        self._memory_rowgroups: list[RowGroup] = []
        self._files: list[SegmentFile] = []
        self._data_dir = data_dir
        self._file_counter = 0
        if data_dir is not None:
            data_dir.mkdir(parents=True, exist_ok=True)

    @property
    def on_disk(self) -> bool:
        return self._data_dir is not None

    @property
    def row_count(self) -> int:
        memory_rows = sum(rg.row_count for rg in self._memory_rowgroups)
        disk_rows = sum(f.row_count for f in self._files)
        return memory_rows + disk_rows

    @property
    def rowgroup_count(self) -> int:
        return len(self._memory_rowgroups) + sum(f.rowgroup_count for f in self._files)

    @property
    def compressed_size(self) -> int:
        """Approximate on-disk footprint of this segment in bytes."""
        memory = sum(rg.compressed_size for rg in self._memory_rowgroups)
        disk = sum(f.file_size for f in self._files)
        return memory + disk

    def append(self, arrays: dict[str, np.ndarray]) -> None:
        """Append one batch (already routed to this segment) as row groups."""
        if not arrays:
            return
        lengths = {len(np.asarray(a)) for a in arrays.values()}
        if len(lengths) != 1:
            raise StorageError("ragged arrays appended to segment")
        (rows,) = lengths
        if rows == 0:
            return
        rowgroups = []
        for start in range(0, rows, DEFAULT_ROWGROUP_ROWS):
            stop = min(start + DEFAULT_ROWGROUP_ROWS, rows)
            chunk = {name: np.asarray(arr)[start:stop] for name, arr in arrays.items()}
            rowgroups.append(RowGroup.from_arrays(self.schema, chunk, codec=self.codec))
        if self.on_disk:
            path = self._data_dir / f"{self.table_name}.seg{self._file_counter:06d}.bin"
            self._file_counter += 1
            with SegmentFileWriter(path, self.schema) as writer:
                for rowgroup in rowgroups:
                    writer.append(rowgroup)
            self._files.append(SegmentFile(path))
        else:
            self._memory_rowgroups.extend(rowgroups)

    def iter_rowgroups(self, columns: list[str] | None = None) -> Iterator[RowGroup]:
        """Yield row groups; disk-backed groups are read from their files."""
        yield from self._memory_rowgroups
        for segment_file in self._files:
            yield from segment_file.iter_rowgroups(columns)

    def iter_batches(self, columns: list[str] | None = None,
                     ranges: dict | None = None,
                     prune_counter=None) -> Iterator[dict[str, np.ndarray]]:
        """Stream the segment one decoded row group at a time.

        This is the source of the streaming execution pipeline: each yielded
        dict holds the requested columns of exactly one surviving row group,
        so peak memory is O(row group), not O(segment).  ``ranges`` maps
        column names to :class:`~repro.vertica.pruning.ColumnRange`
        envelopes; row groups whose zone maps exclude any constrained column
        are skipped without decompressing a single block (``prune_counter``
        is called with the number of skipped row groups).
        """
        names = columns if columns is not None else [c.name for c in self.schema]
        constrained = self._constrained_columns(ranges)
        for rowgroup in self._memory_rowgroups:
            if constrained and not rowgroup.might_match(ranges, constrained):
                if prune_counter is not None:
                    prune_counter(1)
                continue
            yield rowgroup.read(names)
        for segment_file in self._files:
            for index in range(segment_file.rowgroup_count):
                if constrained and not self._zone_maps_match(
                        lambda col, i=index, f=segment_file: f.read_block(i, col),
                        constrained, ranges):
                    if prune_counter is not None:
                        prune_counter(1)
                    continue
                yield segment_file.read_rowgroup(index, names).read(names)

    def typed_empty(self, columns: list[str] | None = None) -> dict[str, np.ndarray]:
        """Zero-row arrays carrying the schema's declared dtypes."""
        names = columns if columns is not None else [c.name for c in self.schema]
        return {
            name: np.empty(0, dtype=self._schema_column(name).numpy_dtype)
            for name in names
        }

    def read_columns(self, columns: list[str] | None = None,
                     ranges: dict | None = None,
                     prune_counter=None) -> dict[str, np.ndarray]:
        """Materialize the segment (the given columns) as arrays.

        The eager counterpart of :meth:`iter_batches` (same pruning and
        telemetry behaviour), kept for the ``mode="eager"`` pipeline
        fallback and for whole-segment consumers like the ODBC path.
        """
        names = columns if columns is not None else [c.name for c in self.schema]
        pieces: dict[str, list[np.ndarray]] = {name: [] for name in names}
        for decoded in self.iter_batches(names, ranges, prune_counter):
            for name in names:
                pieces[name].append(decoded[name])
        empty = None
        out = {}
        for name in names:
            if pieces[name]:
                out[name] = np.concatenate(pieces[name])
            else:
                empty = empty if empty is not None else self.typed_empty(names)
                out[name] = empty[name]
        return out

    def _constrained_columns(self, ranges: dict | None) -> list[str]:
        """The subset of range constraints that name columns of this segment."""
        if not ranges:
            return []
        schema_names = {c.name for c in self.schema}
        return [name for name in ranges if name in schema_names]

    @staticmethod
    def _zone_maps_match(block_for, constrained: list[str], ranges: dict) -> bool:
        """False when any constrained column's zone map excludes the range."""
        for name in constrained:
            envelope = ranges[name]
            block = block_for(name)
            if not block.might_contain(envelope.low, envelope.high):
                return False
        return True

    def _schema_column(self, name: str) -> ColumnSchema:
        for column in self.schema:
            if column.name == name:
                return column
        raise StorageError(f"segment schema has no column {name!r}")


class Table:
    """A segmented, columnar table."""

    def __init__(
        self,
        name: str,
        schema: list[ColumnSchema],
        segmentation: SegmentationScheme,
        node_count: int,
        data_dir: Path | None = None,
        codec: str = "zlib",
        k_safety: int = 0,
    ) -> None:
        if not schema:
            raise CatalogError(f"table {name!r} requires at least one column")
        names = [c.name for c in schema]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name!r}: {names}")
        if ROWID_COLUMN in names:
            raise CatalogError(f"column name {ROWID_COLUMN!r} is reserved")
        self.name = name
        self.user_schema = list(schema)
        # The stored schema appends the hidden global rowid column.
        self.stored_schema = list(schema) + [
            ColumnSchema(ROWID_COLUMN, SqlType.INTEGER)
        ]
        self.segmentation = segmentation
        self.node_count = node_count
        self._lock = threading.Lock()
        self._next_rowid = 0
        if k_safety not in (0, 1):
            raise CatalogError(f"k_safety must be 0 or 1, got {k_safety}")
        if k_safety == 1 and node_count < 2:
            raise CatalogError("k_safety=1 requires at least 2 nodes")
        self.k_safety = k_safety
        self.segments = [
            Segment(
                name,
                node,
                self.stored_schema,
                data_dir=(data_dir / f"node{node:02d}" if data_dir else None),
                codec=codec,
            )
            for node in range(node_count)
        ]
        # Buddy projections (Vertica's k-safety): segment i's replica lives
        # on node (i + 1) % n, so any single node failure loses no data.
        self.buddy_segments: list[Segment] | None = None
        if k_safety == 1:
            self.buddy_segments = [
                Segment(
                    f"{name}_buddy",
                    (node + 1) % node_count,
                    self.stored_schema,
                    data_dir=(
                        data_dir / f"node{(node + 1) % node_count:02d}"
                        if data_dir else None
                    ),
                    codec=codec,
                )
                for node in range(node_count)
            ]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.user_schema]

    @property
    def row_count(self) -> int:
        return sum(segment.row_count for segment in self.segments)

    @property
    def compressed_size(self) -> int:
        return sum(segment.compressed_size for segment in self.segments)

    def column(self, name: str) -> ColumnSchema:
        for column in self.user_schema:
            if column.name == name:
                return column
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.user_schema)

    def insert(self, arrays: dict[str, np.ndarray]) -> int:
        """Insert a batch of rows given as per-column arrays.

        Returns the number of rows inserted.  Thread-safe; rows receive
        consecutive global row ids in insertion order.
        """
        missing = [c.name for c in self.user_schema if c.name not in arrays]
        if missing:
            raise CatalogError(f"insert into {self.name!r} missing columns {missing}")
        extra = [k for k in arrays if not self.has_column(k)]
        if extra:
            raise CatalogError(f"insert into {self.name!r} has unknown columns {extra}")
        coerced = {
            c.name: coerce_to_dtype(np.atleast_1d(np.asarray(arrays[c.name])), c.sql_type)
            for c in self.user_schema
        }
        lengths = {name: len(arr) for name, arr in coerced.items()}
        if len(set(lengths.values())) != 1:
            raise CatalogError(f"ragged insert into {self.name!r}: {lengths}")
        rows = next(iter(lengths.values()))
        if rows == 0:
            return 0
        with self._lock:
            start_rowid = self._next_rowid
            self._next_rowid += rows
        assignment = self.segmentation.assign(
            coerced, rows, start_rowid, self.node_count
        )
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (rows,):
            raise CatalogError("segmentation returned a malformed assignment")
        if ((assignment < 0) | (assignment >= self.node_count)).any():
            raise CatalogError("segmentation assigned a row to a nonexistent node")
        rowids = np.arange(start_rowid, start_rowid + rows, dtype=np.int64)
        for node in range(self.node_count):
            mask = assignment == node
            if not mask.any():
                continue
            batch = {name: arr[mask] for name, arr in coerced.items()}
            batch[ROWID_COLUMN] = rowids[mask]
            self.segments[node].append(batch)
            if self.buddy_segments is not None:
                self.buddy_segments[node].append(batch)
        return rows

    def insert_rows(self, rows: list[list]) -> int:
        """Insert rows given positionally (INSERT ... VALUES path)."""
        if not rows:
            return 0
        width = len(self.user_schema)
        for row in rows:
            if len(row) != width:
                raise CatalogError(
                    f"row has {len(row)} values, table {self.name!r} has {width} columns"
                )
        arrays = {}
        for i, column in enumerate(self.user_schema):
            values = [row[i] for row in rows]
            if column.sql_type is SqlType.VARCHAR:
                arrays[column.name] = np.asarray(values, dtype=object)
            else:
                arrays[column.name] = np.asarray(values)
        return self.insert(arrays)

    def segment_row_counts(self) -> list[int]:
        """Rows per node segment — the distribution VFT's locality policy
        mirrors into Distributed R partitions."""
        return [segment.row_count for segment in self.segments]

    def scan_node(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None,
    ) -> dict[str, np.ndarray]:
        """Read one node's segment (used by UDF fan-out and transfers),
        optionally pruning row groups via zone maps (``ranges``)."""
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        return self.segments[node].read_columns(
            read_names, ranges=ranges, prune_counter=prune_counter)

    def iter_node_batches(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None, replica: bool = False,
    ) -> Iterator[dict[str, np.ndarray]]:
        """Stream one node's segment (or its buddy replica) rowgroup-wise.

        The streaming analog of :meth:`scan_node` / :meth:`scan_node_replica`;
        batches arrive in storage order, so concatenating them reproduces the
        eager scan exactly.
        """
        if replica and self.buddy_segments is None:
            raise CatalogError(
                f"table {self.name!r} has no buddy projections (k_safety=0)"
            )
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        segment = (self.buddy_segments if replica else self.segments)[node]
        return segment.iter_batches(read_names, ranges=ranges,
                                    prune_counter=prune_counter)

    def buddy_host(self, node: int) -> int | None:
        """Node holding the buddy replica of ``node``'s segment (k-safety)."""
        if self.buddy_segments is None:
            return None
        return (node + 1) % self.node_count

    def scan_node_replica(
        self, node: int, columns: list[str] | None = None,
        include_rowid: bool = False, ranges: dict | None = None,
        prune_counter=None,
    ) -> dict[str, np.ndarray]:
        """Read the buddy replica of ``node``'s segment."""
        if self.buddy_segments is None:
            raise CatalogError(
                f"table {self.name!r} has no buddy projections (k_safety=0)"
            )
        names = columns if columns is not None else self.column_names
        read_names = list(names)
        if include_rowid:
            read_names.append(ROWID_COLUMN)
        return self.buddy_segments[node].read_columns(
            read_names, ranges=ranges, prune_counter=prune_counter)

    def scan_all(self, columns: list[str] | None = None) -> dict[str, np.ndarray]:
        """Read the whole table, in arbitrary (segment) order."""
        names = columns if columns is not None else self.column_names
        parts = [self.scan_node(node, names) for node in range(self.node_count)]
        return {
            name: np.concatenate([p[name] for p in parts]) if parts else np.empty(0)
            for name in names
        }
