"""The ``R_Models`` catalog: metadata and permissions for deployed models.

Figure 10 of the paper shows the table::

    => select * from R_Models;
     model  | owner | type       | size | description
     model1 | X     | kmeans     | 100  | clustering
     model2 | Y     | regression | 20   | forecasting

Model *blobs* live in the DFS (:mod:`repro.vertica.dfs`); this module keeps
the queryable metadata plus per-user access grants ("Models can be assigned
security permissions to grant access or modification rights to database
users", §5).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError, PermissionDeniedError
from repro.storage.encoding import SqlType

__all__ = ["ModelRecord", "RModelsCatalog", "Privilege",
           "R_MODELS_TABLE_NAME", "R_MODELS_COLUMN_TYPES"]

R_MODELS_TABLE_NAME = "r_models"

# SQL types of the virtual R_Models table (Figure 10), keyed in column order;
# the semantic analyzer binds ``FROM R_Models`` queries against this schema.
R_MODELS_COLUMN_TYPES: dict[str, SqlType] = {
    "model": SqlType.VARCHAR,
    "owner": SqlType.VARCHAR,
    "type": SqlType.VARCHAR,
    "size": SqlType.INTEGER,
    "description": SqlType.VARCHAR,
}


class Privilege:
    """Model privileges (usage = can predict with it; modify = can replace/drop)."""

    USAGE = "usage"
    MODIFY = "modify"
    ALL = (USAGE, MODIFY)


@dataclass
class ModelRecord:
    """One row of the ``R_Models`` table."""

    model: str
    owner: str
    type: str
    size: int
    description: str
    dfs_path: str
    created_at: float = field(default_factory=time.time)
    grants: dict[str, set[str]] = field(default_factory=dict)
    # Epoch at which this record (re)deployed — stamped from the cluster's
    # shared clock, so a redeploy is an atomic swap serialized with data
    # mutations (0 = deployed outside any cluster transaction machinery).
    commit_epoch: int = 0
    # Training provenance for REFRESH MODEL: a JSON-able dict naming the
    # source table, feature/response columns, algorithm, and fit parameters
    # (None = not refreshable; the model was deployed without provenance).
    training: dict | None = None

    def allows(self, user: str, privilege: str) -> bool:
        if user == self.owner:
            return True
        return privilege in self.grants.get(user, set())


class RModelsCatalog:
    """Thread-safe registry backing the ``R_Models`` virtual table."""

    COLUMNS = ("model", "owner", "type", "size", "description")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, ModelRecord] = {}
        # Bumped on every add/drop so result caches keyed on the model
        # catalog observe redeploys, refreshes, and drops.
        self._version = 0

    def add(self, record: ModelRecord, replace: bool = False, user: str | None = None) -> None:
        key = record.model.lower()
        with self._lock:
            existing = self._records.get(key)
            if existing is not None:
                if not replace:
                    raise CatalogError(f"model {record.model!r} already exists")
                acting = user if user is not None else record.owner
                if not existing.allows(acting, Privilege.MODIFY):
                    raise PermissionDeniedError(
                        f"user {acting!r} may not replace model {record.model!r}"
                    )
            self._records[key] = record
            self._version += 1

    def version(self) -> int:
        """Monotonic counter bumped by every add/drop (cache-key input)."""
        with self._lock:
            return self._version

    def get(self, model: str, user: str | None = None,
            privilege: str = Privilege.USAGE) -> ModelRecord:
        with self._lock:
            record = self._records.get(model.lower())
        if record is None:
            raise CatalogError(f"model {model!r} does not exist")
        if user is not None and not record.allows(user, privilege):
            raise PermissionDeniedError(
                f"user {user!r} lacks {privilege!r} on model {model!r}"
            )
        return record

    def exists(self, model: str) -> bool:
        with self._lock:
            return model.lower() in self._records

    def drop(self, model: str, user: str | None = None) -> ModelRecord:
        with self._lock:
            record = self._records.get(model.lower())
            if record is None:
                raise CatalogError(f"model {model!r} does not exist")
            if user is not None and not record.allows(user, Privilege.MODIFY):
                raise PermissionDeniedError(
                    f"user {user!r} may not drop model {model!r}"
                )
            del self._records[model.lower()]
            self._version += 1
            return record

    def grant(self, model: str, user: str, privilege: str,
              granting_user: str | None = None) -> None:
        if privilege not in Privilege.ALL:
            raise CatalogError(f"unknown privilege {privilege!r}")
        with self._lock:
            record = self._records.get(model.lower())
            if record is None:
                raise CatalogError(f"model {model!r} does not exist")
            if granting_user is not None and granting_user != record.owner:
                raise PermissionDeniedError(
                    f"only the owner may grant on model {model!r}"
                )
            record.grants.setdefault(user, set()).add(privilege)

    def revoke(self, model: str, user: str, privilege: str,
               revoking_user: str | None = None) -> None:
        with self._lock:
            record = self._records.get(model.lower())
            if record is None:
                raise CatalogError(f"model {model!r} does not exist")
            if revoking_user is not None and revoking_user != record.owner:
                raise PermissionDeniedError(
                    f"only the owner may revoke on model {model!r}"
                )
            record.grants.get(user, set()).discard(privilege)

    def records(self) -> list[ModelRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.model)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Materialize the catalog as column arrays (SELECT * FROM R_Models)."""
        records = self.records()
        return {
            "model": np.asarray([r.model for r in records], dtype=object),
            "owner": np.asarray([r.owner for r in records], dtype=object),
            "type": np.asarray([r.type for r in records], dtype=object),
            "size": np.asarray([r.size for r in records], dtype=np.int64),
            "description": np.asarray([r.description for r in records], dtype=object),
        }
