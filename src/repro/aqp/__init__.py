"""Approximate query processing: stored samples, the ``WITHIN n% ERROR``
rewriter, and epoch-incremental sample maintenance.

Samples are first-class stored artifacts — ordinary segmented tables plus
provenance in the :class:`~repro.aqp.catalog.AqpCatalog` — so DFS
replication, delete vectors, the WOS, and result-cache invalidation
tokens all reuse.  ``SELECT COUNT/SUM/AVG ... WITHIN n% ERROR`` queries
are answered from the best qualifying sample via Horvitz–Thompson
scale-up with CLT confidence intervals, falling back to exact execution
when the realized half-width misses the bound; the Tuple Mover folds
trickle-inserted base rows into samples between its passes.  See
``docs/aqp.md`` for the walkthrough.
"""

from repro.aqp.build import build_sample, drop_sample, materialize_sample
from repro.aqp.catalog import AqpCatalog, SampleRecord
from repro.aqp.estimator import Estimate, ht_estimate, keep_mask
from repro.aqp.refresh import (
    SampleRefreshResult,
    auto_refresh_samples,
    refresh_sample,
)
from repro.aqp.rewrite import ApproximateAnswer, answer_within

__all__ = [
    "AqpCatalog",
    "SampleRecord",
    "Estimate",
    "ht_estimate",
    "keep_mask",
    "build_sample",
    "drop_sample",
    "materialize_sample",
    "SampleRefreshResult",
    "refresh_sample",
    "auto_refresh_samples",
    "ApproximateAnswer",
    "answer_within",
]
