"""The AQP sample catalog: provenance and permissions for stored samples.

A sample's *rows* live in an ordinary segmented table (so DFS replication,
delete vectors, the WOS, and invalidation tokens all reuse); this module
keeps the queryable metadata: which base table the sample summarizes, the
nominal rate, per-stratum inclusion rates and population counts, the
deterministic seed, and the base-table ``commit_epoch`` the sample
currently reflects.  Access control mirrors the ``R_Models`` catalog —
``USAGE`` lets a user's ``WITHIN ... ERROR`` queries be answered from the
sample, ``MODIFY`` is required to refresh or drop it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import CatalogError, PermissionDeniedError
from repro.vertica.models import Privilege

__all__ = ["SampleRecord", "AqpCatalog", "sample_dfs_path"]


def sample_dfs_path(name: str) -> str:
    """Where a sample's provenance blob lives in the DFS."""
    return f"aqp/sample/{name.lower()}"


@dataclass
class SampleRecord:
    """Provenance for one stored sample.

    ``strata_rates`` maps stratum value -> inclusion rate (empty for
    uniform samples, where every row is included at ``rate``);
    ``strata_counts`` holds the exact per-stratum population counts at
    ``commit_epoch``, which the post-stratified estimators use as known
    totals.  Both are replaced wholesale by refresh, never mutated in
    place, so readers holding a record always see one consistent epoch.
    """

    name: str
    base_table: str
    kind: str  # "uniform" | "stratified"
    rate: float  # nominal inclusion rate, as a fraction in (0, 1]
    seed: int
    owner: str
    strata_column: str | None = None
    strata_rates: dict[object, float] = field(default_factory=dict)
    strata_counts: dict[object, int] = field(default_factory=dict)
    # Base-table snapshot epoch the sample's rows reflect.
    commit_epoch: int = 0
    # Population / sample row counts at commit_epoch.
    base_rows: int = 0
    sample_rows: int = 0
    created_at: float = field(default_factory=time.time)
    grants: dict[str, set[str]] = field(default_factory=dict)

    def allows(self, user: str, privilege: str) -> bool:
        if user == self.owner:
            return True
        return privilege in self.grants.get(user, set())

    def inclusion_rate(self, stratum: object | None = None) -> float:
        """The inclusion probability for a row (of ``stratum``, if
        stratified); strata unseen at build time sample at the nominal
        rate."""
        if self.kind == "stratified":
            return float(self.strata_rates.get(stratum, self.rate))
        return float(self.rate)


class AqpCatalog:
    """Thread-safe registry of the cluster's stored samples."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, SampleRecord] = {}
        # Bumped on every add/drop/refresh so result caches keyed on the
        # sample catalog observe sample lifecycle changes.
        self._version = 0
        self._refresh_locks: dict[str, threading.Lock] = {}

    def refresh_lock(self, name: str) -> threading.Lock:
        """The per-sample lock serializing refresh passes.

        An explicit refresh racing the Tuple Mover's background fold would
        otherwise read the same ``commit_epoch`` and insert the same delta
        window twice; whoever acquires second re-reads the record and sees
        the already-advanced epoch."""
        with self._lock:
            return self._refresh_locks.setdefault(name.lower(),
                                                  threading.Lock())

    def add(self, record: SampleRecord, replace: bool = False,
            user: str | None = None) -> None:
        key = record.name.lower()
        with self._lock:
            existing = self._records.get(key)
            if existing is not None:
                if not replace:
                    raise CatalogError(f"sample {record.name!r} already exists")
                acting = user if user is not None else record.owner
                if not existing.allows(acting, Privilege.MODIFY):
                    raise PermissionDeniedError(
                        f"user {acting!r} may not replace sample {record.name!r}"
                    )
            self._records[key] = record
            self._version += 1

    def version(self) -> int:
        """Monotonic counter bumped by every add/drop (cache-key input)."""
        with self._lock:
            return self._version

    def get(self, name: str, user: str | None = None,
            privilege: str = Privilege.USAGE) -> SampleRecord:
        with self._lock:
            record = self._records.get(name.lower())
        if record is None:
            raise CatalogError(f"sample {name!r} does not exist")
        if user is not None and not record.allows(user, privilege):
            raise PermissionDeniedError(
                f"user {user!r} lacks {privilege!r} on sample {name!r}"
            )
        return record

    def exists(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._records

    def drop(self, name: str, user: str | None = None) -> SampleRecord:
        with self._lock:
            record = self._records.get(name.lower())
            if record is None:
                raise CatalogError(f"sample {name!r} does not exist")
            if user is not None and not record.allows(user, Privilege.MODIFY):
                raise PermissionDeniedError(
                    f"user {user!r} may not drop sample {name!r}"
                )
            del self._records[name.lower()]
            self._refresh_locks.pop(name.lower(), None)
            self._version += 1
            return record

    def grant(self, name: str, user: str, privilege: str,
              granting_user: str | None = None) -> None:
        if privilege not in Privilege.ALL:
            raise CatalogError(f"unknown privilege {privilege!r}")
        with self._lock:
            record = self._records.get(name.lower())
            if record is None:
                raise CatalogError(f"sample {name!r} does not exist")
            if granting_user is not None and granting_user != record.owner:
                raise PermissionDeniedError(
                    f"only the owner may grant on sample {name!r}"
                )
            record.grants.setdefault(user, set()).add(privilege)

    def revoke(self, name: str, user: str, privilege: str,
               revoking_user: str | None = None) -> None:
        with self._lock:
            record = self._records.get(name.lower())
            if record is None:
                raise CatalogError(f"sample {name!r} does not exist")
            if revoking_user is not None and revoking_user != record.owner:
                raise PermissionDeniedError(
                    f"only the owner may revoke on sample {name!r}"
                )
            record.grants.get(user, set()).discard(privilege)

    def records(self) -> list[SampleRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.name)

    def samples_on(self, base_table: str) -> list[SampleRecord]:
        """Every sample built on ``base_table``, sorted by name."""
        base = base_table.lower()
        return [r for r in self.records() if r.base_table.lower() == base]
