"""The AQP subsystem's observability manifest.

Every metric, span, and fault site the approximate-query-processing layer
emits is listed here by name.  The ``aqp-registry-drift`` reprolint rule
(RL906) holds this manifest against the central registries — the metrics
``CATALOG`` (:mod:`repro.obs.metrics`), the ``SPAN_TAXONOMY``
(:mod:`repro.obs.trace`), and ``FAULT_SITES`` (:mod:`repro.faults.sites`)
— in **both** directions: a name listed here but missing from its registry
fails lint, and so does an AQP-owned registry entry that this manifest
forgot.  The manifest is what keeps ``docs/aqp.md`` honest about the
subsystem's complete operational surface.
"""

from __future__ import annotations

__all__ = ["AQP_METRICS", "AQP_SPANS", "AQP_FAULT_SITES"]

#: Instruments declared under ``repro.aqp.*`` modules in the metrics CATALOG.
AQP_METRICS: tuple[str, ...] = (
    "samples_built",
    "aqp_rewrites",
    "aqp_fallbacks",
    "sample_rows_folded",
    "sample_rebuilds",
    "sample_staleness_epochs",
)

#: Span names the AQP layer opens (the ``aqp.*`` slice of SPAN_TAXONOMY).
AQP_SPANS: tuple[str, ...] = (
    "aqp.build",
    "aqp.rewrite",
    "aqp.refresh",
)

#: Fault-injection sites owned by the AQP layer (the ``aqp.*`` slice of
#: FAULT_SITES).
AQP_FAULT_SITES: tuple[str, ...] = (
    "aqp.refresh",
)
