"""Sample materialization: ``CREATE SAMPLE`` and from-scratch rebuilds.

A sample is materialized as an ordinary segmented table holding the base
table's columns plus a ``base_rowid`` provenance column (the hidden rowid
of the originating base row).  Storing the base rowid makes two things
cheap: parity checks between an incrementally refreshed sample and a
from-scratch rebuild (sort by ``base_rowid`` and compare), and future
delete reconciliation.  Sample membership is the deterministic hash draw
from :mod:`repro.aqp.estimator`, so rebuilding at the same snapshot with
the same seed and rates reproduces the sample bit-for-bit.

Provenance (base table, rate, seed, per-stratum rates and counts, build
epoch) is registered in the cluster's :class:`~repro.aqp.catalog
.AqpCatalog` and mirrored as a JSON blob in the DFS, so the artifact
survives inspection paths that only see storage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.aqp.catalog import AqpCatalog, SampleRecord, sample_dfs_path
from repro.aqp.estimator import keep_mask, keep_mask_stratified, stratum_rates
from repro.errors import CatalogError
from repro.storage.encoding import ColumnSchema, SqlType
from repro.vertica.table import ROWID_COLUMN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["build_sample", "drop_sample", "materialize_sample",
           "default_seed", "BASE_ROWID_COLUMN"]

#: Provenance column every sample table carries: the base row's hidden rowid.
BASE_ROWID_COLUMN = "base_rowid"


def default_seed(name: str) -> int:
    """A stable per-sample seed derived from the sample's name."""
    digest = hashlib.sha256(name.lower().encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def _write_provenance(cluster: "VerticaCluster", record: SampleRecord) -> None:
    blob = json.dumps({
        "sample": record.name,
        "base_table": record.base_table,
        "kind": record.kind,
        "rate": record.rate,
        "seed": record.seed,
        "commit_epoch": record.commit_epoch,
        "base_rows": record.base_rows,
        "sample_rows": record.sample_rows,
        "strata_column": record.strata_column,
        "strata": sorted(
            (str(value), record.strata_rates.get(value, record.rate), count)
            for value, count in record.strata_counts.items()
        ),
    }).encode()
    cluster.dfs.write(sample_dfs_path(record.name), blob, overwrite=True)


def materialize_sample(
    cluster: "VerticaCluster",
    record: SampleRecord,
    snapshot=None,
) -> SampleRecord:
    """Create and fill the sample's backing table at ``snapshot``.

    The backing table must not exist yet.  Stratified records with empty
    ``strata_rates`` (a first build) get rates derived from the population
    counts observed here; non-empty rates are kept frozen, which is what
    makes an incremental fold and a rebuild select identical rows.
    Returns the record restamped with the snapshot epoch and row counts;
    the caller registers it in the :class:`AqpCatalog`.
    """
    base = cluster.catalog.get_table(record.base_table)
    if snapshot is None:
        snapshot = base.resolve_snapshot()
    columns = [schema.name for schema in base.user_schema]
    data = base.scan_all(columns + [ROWID_COLUMN], snapshot=snapshot)
    rowids = data[ROWID_COLUMN]
    base_rows = len(rowids)

    strata_rates = dict(record.strata_rates)
    strata_counts: dict[object, int] = {}
    if record.kind == "stratified":
        assert record.strata_column is not None
        strata = data[record.strata_column]
        if base_rows:
            values, counts = np.unique(strata, return_counts=True)
            strata_counts = {
                value: int(count)
                for value, count in zip(values.tolist(), counts.tolist())
            }
        if not strata_rates:
            strata_rates = stratum_rates(strata_counts, record.rate)
        mask = keep_mask_stratified(
            rowids, strata, record.seed, strata_rates, record.rate)
    else:
        mask = keep_mask(rowids, record.seed, record.rate)

    schema = [ColumnSchema(s.name, s.sql_type) for s in base.user_schema]
    schema.append(ColumnSchema(BASE_ROWID_COLUMN, SqlType.INTEGER))
    sample_table = cluster.create_table(record.name, schema)
    kept = int(np.count_nonzero(mask))
    if kept:
        arrays = {name: data[name][mask] for name in columns}
        arrays[BASE_ROWID_COLUMN] = rowids[mask].astype(np.int64)
        sample_table.insert(arrays, direct=True)

    stamped = dataclasses.replace(
        record,
        commit_epoch=snapshot.epoch if snapshot is not None else 0,
        base_rows=base_rows,
        sample_rows=kept,
        strata_rates=strata_rates,
        strata_counts=strata_counts,
    )
    _write_provenance(cluster, stamped)
    return stamped


def build_sample(
    cluster: "VerticaCluster",
    name: str,
    base_table: str,
    rate: float,
    strata_column: str | None = None,
    seed: int | None = None,
    user: str = "dbadmin",
) -> SampleRecord:
    """``CREATE SAMPLE name ON base_table ...``: materialize and register.

    ``rate`` is a fraction in (0, 1]; passing ``strata_column`` builds a
    stratified sample (rare strata oversampled, see
    :func:`repro.aqp.estimator.stratum_rates`).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sample rate must be in (0, 1]; got {rate}")
    catalog: AqpCatalog = cluster.aqp
    if catalog.exists(name):
        raise CatalogError(f"sample {name!r} already exists")
    if cluster.catalog.has_table(name):
        raise CatalogError(
            f"{name!r} already names a table; pick another sample name")
    base = cluster.catalog.get_table(base_table)
    if strata_column is not None:
        if strata_column not in {s.name for s in base.user_schema}:
            raise CatalogError(
                f"stratification column {strata_column!r} does not exist "
                f"on table {base_table!r}"
            )
    record = SampleRecord(
        name=name,
        base_table=base.name,
        kind="stratified" if strata_column is not None else "uniform",
        rate=float(rate),
        seed=seed if seed is not None else default_seed(name),
        owner=user,
        strata_column=strata_column,
    )
    with cluster.tracer.span("aqp.build", sample=name, table=base.name) as span:
        stamped = materialize_sample(cluster, record)
        span.set(base_rows=stamped.base_rows, sample_rows=stamped.sample_rows)
    catalog.add(stamped, user=user)
    cluster.telemetry.add("samples_built")
    return stamped


def drop_sample(cluster: "VerticaCluster", name: str,
                user: str = "dbadmin") -> SampleRecord:
    """``DROP SAMPLE name``: catalog entry, backing table, and DFS blob.

    Requires MODIFY on the sample (owner always qualifies), mirroring
    ``DROP TABLE`` semantics.
    """
    record = cluster.aqp.drop(name, user=user)
    cluster.catalog.drop_table(record.name, if_exists=True)
    path = sample_dfs_path(record.name)
    if cluster.dfs.exists(path):
        cluster.dfs.delete(path)
    return record
