"""The ``WITHIN n% ERROR`` query rewriter.

After semantic analysis admits a single-aggregate SELECT with a ``WITHIN``
clause, the executor hands it here instead of scanning the base table.
The rewriter picks the best qualifying sample (highest nominal rate among
the samples built on the query's table that the user holds USAGE on and
whose backing table still exists), scans *it* instead of the base table,
applies the WHERE predicate with the ordinary vectorized expression
evaluator, and scales the aggregate up with the Horvitz–Thompson
estimators from :mod:`repro.aqp.estimator`.

The answer is served only when the realized CLT half-width meets the
requested relative error bound — ``half_width <= bound * |estimate|`` —
otherwise the rewriter declines (returns ``None``) and the executor
transparently runs the exact query.  Declines for any reason (no sample,
empty qualifying sample, bound unmet) count into ``aqp_fallbacks``;
served answers count into ``aqp_rewrites``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.aqp.build import BASE_ROWID_COLUMN
from repro.aqp.catalog import SampleRecord
from repro.aqp.estimator import Estimate, ht_estimate
from repro.vertica import expressions
from repro.vertica.models import Privilege
from repro.vertica.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["ApproximateAnswer", "answer_within", "candidate_samples",
           "DEFAULT_CONFIDENCE", "RESULT_COLUMNS"]

#: Confidence level when the query omits the CONFIDENCE clause.
DEFAULT_CONFIDENCE = 0.95

#: Column shape of every WITHIN result row (approximate or exact fallback).
RESULT_COLUMNS = ("estimate", "ci_low", "ci_high", "sample_fraction")


@dataclass(frozen=True)
class ApproximateAnswer:
    """One served approximate aggregate."""

    estimate: float
    ci_low: float
    ci_high: float
    sample_fraction: float
    sample: str


def candidate_samples(
    cluster: "VerticaCluster", table: str, user: str,
) -> list[SampleRecord]:
    """Samples that could answer a WITHIN query over ``table``: built on
    it, backing table intact, USAGE granted — best (highest rate) first."""
    out = [
        record for record in cluster.aqp.samples_on(table)
        if cluster.catalog.has_table(record.name)
        and record.allows(user, Privilege.USAGE)
    ]
    out.sort(key=lambda r: (-r.rate, r.name))
    return out


def _filtered_batch(
    sample_table, call: ast.AggregateCall, where: ast.Expr | None,
    record: SampleRecord, snapshot,
) -> dict[str, np.ndarray]:
    """Scan the sample's needed columns and apply the WHERE predicate."""
    needed: set[str] = {BASE_ROWID_COLUMN}
    if where is not None:
        needed |= expressions.columns_referenced(where)
    if call.arg is not None:
        needed |= expressions.columns_referenced(call.arg)
    if record.strata_column is not None:
        needed.add(record.strata_column)
    batch = sample_table.scan_all(sorted(needed), snapshot=snapshot)
    if where is None:
        return batch
    rows = len(batch[BASE_ROWID_COLUMN])
    mask = np.atleast_1d(
        np.asarray(expressions.evaluate(where, batch), dtype=bool))
    if mask.shape == (1,) and rows != 1:
        mask = np.broadcast_to(mask, (rows,))
    return {name: arr[mask] for name, arr in batch.items()}


def _row_weights(record: SampleRecord,
                 batch: dict[str, np.ndarray]) -> np.ndarray:
    rows = len(batch[BASE_ROWID_COLUMN])
    if record.kind == "stratified":
        assert record.strata_column is not None
        strata = batch[record.strata_column]
        rates = np.fromiter(
            (record.inclusion_rate(value) for value in strata.tolist()),
            dtype=np.float64, count=rows,
        )
        return 1.0 / rates
    return np.full(rows, 1.0 / record.rate, dtype=np.float64)


def _estimate_from(
    record: SampleRecord, sample_table, call: ast.AggregateCall,
    where: ast.Expr | None, confidence: float, snapshot,
) -> Estimate | None:
    batch = _filtered_batch(sample_table, call, where, record, snapshot)
    if not len(batch[BASE_ROWID_COLUMN]):
        return None  # nothing matched in the sample: no bounded answer
    weights = _row_weights(record, batch)
    values = None
    if call.arg is not None:
        values = np.asarray(
            expressions.evaluate(call.arg, batch), dtype=np.float64)
    if call.name in ("SUM", "AVG") and values is None:
        return None
    return ht_estimate(call.name, values, weights, confidence)


def answer_within(
    cluster: "VerticaCluster",
    statement: ast.Select,
    user: str,
    snapshot=None,
) -> ApproximateAnswer | None:
    """Try to answer a WITHIN query from a stored sample.

    Returns ``None`` when no sample can meet the bound; the caller falls
    back to exact execution.
    """
    assert statement.within_error is not None and statement.table is not None
    bound = statement.within_error
    confidence = (statement.confidence
                  if statement.confidence is not None else DEFAULT_CONFIDENCE)
    call = statement.items[0].expr
    assert isinstance(call, ast.AggregateCall)
    with cluster.tracer.span("aqp.rewrite", table=statement.table) as span:
        for record in candidate_samples(cluster, statement.table, user):
            sample_table = cluster.catalog.get_table(record.name)
            estimate = _estimate_from(
                record, sample_table, call, statement.where,
                confidence, snapshot)
            if estimate is None:
                continue
            if estimate.half_width > bound * abs(estimate.estimate):
                continue  # realized CI too wide: try a denser sample
            fraction = (record.sample_rows / record.base_rows
                        if record.base_rows else record.rate)
            span.set(sample=record.name, served=1,
                     half_width=estimate.half_width)
            cluster.telemetry.add("aqp_rewrites")
            return ApproximateAnswer(
                estimate=estimate.estimate,
                ci_low=estimate.ci_low,
                ci_high=estimate.ci_high,
                sample_fraction=fraction,
                sample=record.name,
            )
        span.set(served=0)
        cluster.telemetry.add("aqp_fallbacks")
    return None
