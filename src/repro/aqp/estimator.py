"""Statistical core of the AQP subsystem.

Two responsibilities live here, deliberately free of any engine state so
they are trivially testable:

**Deterministic Bernoulli sampling.**  Membership of a row in a sample is
a pure function of its hidden ``_rowid`` and the sample's seed:
``hash64(rowid XOR seed) / 2**64 < rate``.  The same splitmix64 finalizer
the segmentation layer uses (:func:`repro.vertica.segmentation.hash64`)
gives uniform, well-mixed draws, and — because the decision depends only
on the rowid — an epoch-incremental fold over ``scan_delta`` selects
*exactly* the rows a from-scratch rebuild at the same snapshot would.
That identity is what the mutation×AQP parity tests pin to 1e-9.

**Horvitz–Thompson estimation.**  Every sampled row carries a weight
``w = 1/r`` where ``r`` is its inclusion probability (uniform samples: one
rate for every row; stratified samples: a per-stratum rate, so rare strata
can be oversampled).  For independent Bernoulli inclusion the unbiased
variance estimators reduce to ``w*(w-1)`` terms:

* ``COUNT``: estimate ``sum(w)``, variance ``sum(w*(w-1))``
* ``SUM(y)``: estimate ``sum(w*y)``, variance ``sum(w*(w-1)*y**2)``
* ``AVG(y)``: the ratio ``sum(w*y)/sum(w)`` with the linearized (delta
  method) variance ``sum(w*(w-1)*(y-R)**2) / sum(w)**2``

Confidence intervals are CLT-normal: ``estimate ± z * sqrt(variance)``
with ``z`` from an Acklam-style rational approximation of the inverse
normal CDF (no scipy dependency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.vertica.segmentation import hash64

__all__ = [
    "Estimate",
    "keep_mask",
    "stratum_rates",
    "ht_estimate",
    "inverse_normal_cdf",
    "z_value",
]

#: Stratified samples keep at least this many expected rows per stratum by
#: boosting the stratum's rate above the nominal sample rate.
MIN_STRATUM_ROWS = 100


@dataclass(frozen=True)
class Estimate:
    """One approximate aggregate with its CLT confidence interval."""

    estimate: float
    ci_low: float
    ci_high: float
    se: float
    confidence: float

    @property
    def half_width(self) -> float:
        return self.ci_high - self.estimate


def keep_mask(rowids: np.ndarray, seed: int, rate: float) -> np.ndarray:
    """Deterministic Bernoulli membership: keep row iff
    ``hash64(rowid XOR seed) / 2**64 < rate``.

    A pure function of (rowid, seed), so incremental folds and full
    rebuilds select identical row sets.
    """
    rid = np.asarray(rowids).astype(np.int64, copy=False)
    mixed = rid ^ np.int64(seed & 0x7FFFFFFFFFFFFFFF)
    draws = hash64(mixed).astype(np.float64) / float(2**64)
    return draws < float(rate)


def keep_mask_stratified(
    rowids: np.ndarray,
    strata: np.ndarray,
    seed: int,
    rates: dict[object, float],
    default_rate: float,
) -> np.ndarray:
    """Per-stratum Bernoulli membership with the same hash draws.

    ``rates`` maps stratum value -> inclusion rate; strata unseen at build
    time (new values arriving in a delta) fall back to ``default_rate``.
    """
    rid = np.asarray(rowids).astype(np.int64, copy=False)
    mixed = rid ^ np.int64(seed & 0x7FFFFFFFFFFFFFFF)
    draws = hash64(mixed).astype(np.float64) / float(2**64)
    row_rates = np.fromiter(
        (float(rates.get(v, default_rate)) for v in strata.tolist()),
        dtype=np.float64, count=len(strata),
    )
    return draws < row_rates


def stratum_rates(
    counts: dict[object, int], rate: float,
    min_rows: int = MIN_STRATUM_ROWS,
) -> dict[object, float]:
    """Per-stratum inclusion rates: the nominal rate, boosted so every
    stratum expects at least ``min_rows`` sampled rows (capped at 1.0)."""
    out: dict[object, float] = {}
    for value, n in counts.items():
        boosted = max(float(rate), float(min_rows) / max(int(n), 1))
        out[value] = min(1.0, boosted)
    return out


# -- inverse normal CDF (Acklam's rational approximation) ----------------------

_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)
_P_LOW = 0.02425


def inverse_normal_cdf(p: float) -> float:
    """The standard-normal quantile function, accurate to ~1.15e-9."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1); got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4])
                 * q + _C[5])
                / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0))
    if p > 1.0 - _P_LOW:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -((((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4])
                  * q + _C[5])
                 / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0))
    q = p - 0.5
    r = q * q
    return ((((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4])
             * r + _A[5]) * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4])
               * r + 1.0))


def z_value(confidence: float) -> float:
    """The two-sided critical value for a ``confidence`` CLT interval."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    return inverse_normal_cdf(0.5 + confidence / 2.0)


# -- Horvitz–Thompson estimators -----------------------------------------------


def ht_estimate(
    func: str,
    values: np.ndarray | None,
    weights: np.ndarray,
    confidence: float,
) -> Estimate:
    """HT scale-up of one aggregate over weighted sample rows.

    ``values`` is the aggregate argument per sampled row (None for
    COUNT(*)); ``weights`` is ``1 / inclusion_rate`` per row.  Rows must
    already be predicate-filtered.
    """
    w = np.asarray(weights, dtype=np.float64)
    z = z_value(confidence)
    excess = w * (w - 1.0)  # Bernoulli variance kernel per row
    if func == "COUNT":
        est = float(np.sum(w))
        var = float(np.sum(excess))
    elif func == "SUM":
        y = np.asarray(values, dtype=np.float64)
        est = float(np.sum(w * y))
        var = float(np.sum(excess * y * y))
    elif func == "AVG":
        y = np.asarray(values, dtype=np.float64)
        n_hat = float(np.sum(w))
        if n_hat <= 0.0:
            raise ValueError("AVG over an empty sample")
        est = float(np.sum(w * y)) / n_hat
        resid = y - est
        var = float(np.sum(excess * resid * resid)) / (n_hat * n_hat)
    else:
        raise ValueError(f"unsupported approximate aggregate {func!r}")
    se = math.sqrt(max(var, 0.0))
    return Estimate(
        estimate=est,
        ci_low=est - z * se,
        ci_high=est + z * se,
        se=se,
        confidence=confidence,
    )
