"""Epoch-incremental sample maintenance.

A sample reflects its base table as of ``record.commit_epoch``.  Refresh
closes the gap to the current snapshot the same way ``REFRESH MODEL``
does for models: when the mutation window ``(commit_epoch, snapshot]``
contains only inserts (and still precedes the Ancient History Mark's
purge horizon), the delta rows are read with
:meth:`~repro.vertica.table.Table.scan_delta`, passed through the same
deterministic hash draw the build used, and the survivors trickle into
the sample table's WOS — cost scales with the delta, not the table.
Deletes in the window (or history lost behind the AHM) force a
from-scratch rebuild at the snapshot, with the record's inclusion rates
kept frozen so the rebuilt sample is bit-identical to what an untainted
incremental history would have produced.

The Tuple Mover calls :func:`auto_refresh_samples` after its
moveout/mergeout passes, folding only delta-safe samples (rebuilds drop
and recreate the backing table, which is too disruptive for a background
thread); the ``sample_staleness_epochs`` gauge reports the lag every
refresh observed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.aqp.build import BASE_ROWID_COLUMN, _write_provenance, materialize_sample
from repro.aqp.catalog import SampleRecord
from repro.aqp.estimator import keep_mask, keep_mask_stratified
from repro.errors import CatalogError
from repro.vertica.models import Privilege
from repro.vertica.table import ROWID_COLUMN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["SampleRefreshResult", "refresh_sample", "auto_refresh_samples"]


@dataclass(frozen=True)
class SampleRefreshResult:
    """What one sample refresh did and why."""

    sample: str
    strategy: str  # "noop" | "incremental" | "rebuild" | "skipped"
    staleness_epochs: int
    rows_folded: int
    record: SampleRecord


def _merge_counts(old: dict[object, int],
                  delta: np.ndarray) -> dict[object, int]:
    merged = dict(old)
    if len(delta):
        values, counts = np.unique(delta, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            merged[value] = merged.get(value, 0) + int(count)
    return merged


def refresh_sample(
    cluster: "VerticaCluster",
    name: str,
    user: str = "dbadmin",
    allow_rebuild: bool = True,
) -> SampleRefreshResult:
    """Bring sample ``name`` up to the current committed snapshot.

    Requires MODIFY on the sample.  With ``allow_rebuild=False`` (the
    Tuple Mover's background mode) a refresh that would need a rebuild is
    reported as ``"skipped"`` instead of dropping the backing table out
    from under concurrent readers.  Passes over one sample serialize on a
    per-sample lock: a racing pair would read the same ``commit_epoch``
    and fold the same delta window twice.
    """
    with cluster.aqp.refresh_lock(name):
        return _refresh_locked(cluster, name, user, allow_rebuild)


def _refresh_locked(
    cluster: "VerticaCluster",
    name: str,
    user: str,
    allow_rebuild: bool,
) -> SampleRefreshResult:
    record = cluster.aqp.get(name, user=user, privilege=Privilege.MODIFY)
    base = cluster.catalog.get_table(record.base_table)
    sample_table = cluster.catalog.get_table(record.name)
    epochs = cluster.catalog.epochs
    snapshot = epochs.snapshot()
    since = record.commit_epoch
    staleness = max(0, snapshot.epoch - since)
    gauge = cluster.telemetry.registry.gauge("sample_staleness_epochs")
    gauge.add(staleness - gauge.now)
    if since >= snapshot.epoch:
        return SampleRefreshResult(name, "noop", 0, 0, record)

    with cluster.tracer.span("aqp.refresh", sample=name,
                             table=base.name) as span:
        faults = cluster.faults
        if faults is not None:
            faults.perturb("aqp.refresh", sample=name, table=base.name)
        delta_safe = (
            since >= epochs.ancient_history_mark
            and not base.has_deletes_between(since, snapshot)
        )
        if not delta_safe:
            if not allow_rebuild:
                span.set(strategy="skipped", staleness=staleness)
                return SampleRefreshResult(name, "skipped", staleness, 0, record)
            # Deletes in the window (or purged history): rebuild from
            # scratch at the snapshot with the record's frozen rates.
            cluster.catalog.drop_table(record.name, if_exists=True)
            cleared = dataclasses.replace(record, strata_counts={})
            stamped = materialize_sample(cluster, cleared, snapshot)
            cluster.aqp.add(stamped, replace=True, user=user)
            cluster.telemetry.add("sample_rebuilds")
            span.set(strategy="rebuild", staleness=staleness,
                     sample_rows=stamped.sample_rows)
            return SampleRefreshResult(name, "rebuild", staleness, 0, stamped)

        columns = [schema.name for schema in base.user_schema]
        delta = base.scan_delta(columns + [ROWID_COLUMN], since, snapshot)
        rowids = delta[ROWID_COLUMN]
        if record.kind == "stratified":
            assert record.strata_column is not None
            strata = delta[record.strata_column]
            mask = keep_mask_stratified(
                rowids, strata, record.seed, record.strata_rates, record.rate)
            new_counts = _merge_counts(record.strata_counts, strata)
        else:
            mask = keep_mask(rowids, record.seed, record.rate)
            new_counts = record.strata_counts
        kept = int(np.count_nonzero(mask))
        if kept:
            arrays = {name_: delta[name_][mask] for name_ in columns}
            arrays[BASE_ROWID_COLUMN] = rowids[mask].astype(np.int64)
            # direct=False: land in the sample's WOS like any trickle
            # insert (and without waking the Tuple Mover from inside its
            # own pass).
            sample_table.insert(arrays, direct=False)
        stamped = dataclasses.replace(
            record,
            commit_epoch=snapshot.epoch,
            base_rows=record.base_rows + len(rowids),
            sample_rows=record.sample_rows + kept,
            strata_counts=new_counts,
        )
        _write_provenance(cluster, stamped)
        cluster.aqp.add(stamped, replace=True, user=user)
        if kept:
            cluster.telemetry.add("sample_rows_folded", kept)
        span.set(strategy="incremental", staleness=staleness,
                 rows_folded=kept, delta_rows=len(rowids))
    return SampleRefreshResult(name, "incremental", staleness, kept, stamped)


def auto_refresh_samples(cluster: "VerticaCluster") -> int:
    """Fold every delta-safe stale sample; returns rows folded.

    Called by the Tuple Mover after its passes.  Samples whose base or
    backing table has been dropped are skipped quietly (a later DROP
    SAMPLE cleans the record up).
    """
    folded = 0
    for record in cluster.aqp.records():
        if not (cluster.catalog.has_table(record.base_table)
                and cluster.catalog.has_table(record.name)):
            continue
        try:
            result = refresh_sample(
                cluster, record.name, user=record.owner, allow_rebuild=False)
        except CatalogError:  # dropped concurrently between check and refresh
            continue
        folded += result.rows_folded
    return folded
