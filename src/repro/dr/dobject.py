"""Base machinery shared by darray / dframe / dlist.

Each distributed object owns a list of :class:`PartitionInfo` records — the
master-side metadata the paper describes: "After declaration, metadata
related to darray is created on the Distributed R master node, but no memory
is reserved on the workers to store data contents" (§4).  Partition contents
live on workers and are only materialized on the master by ``collect``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.session import DRSession

__all__ = ["PartitionInfo", "DistributedObject"]

_OBJECT_IDS = itertools.count(1)


@dataclass
class PartitionInfo:
    """Master-side metadata for one partition."""

    index: int
    worker_index: int
    nrow: int | None = None
    ncol: int | None = None
    nbytes: int = 0

    @property
    def filled(self) -> bool:
        return self.nrow is not None


class DistributedObject:
    """A partitioned object whose contents live on session workers."""

    kind = "object"

    def __init__(self, session: "DRSession", npartitions: int,
                 worker_assignment: Sequence[int] | None = None) -> None:
        if npartitions < 1:
            raise PartitionError("npartitions must be >= 1")
        self.session = session
        self.object_id = next(_OBJECT_IDS)
        if worker_assignment is None:
            worker_count = len(session.workers)
            worker_assignment = [i % worker_count for i in range(npartitions)]
        if len(worker_assignment) != npartitions:
            raise PartitionError(
                f"{len(worker_assignment)} worker assignments for "
                f"{npartitions} partitions"
            )
        for worker_index in worker_assignment:
            if not 0 <= worker_index < len(session.workers):
                raise PartitionError(f"no worker {worker_index} in this session")
        self.partitions = [
            PartitionInfo(index=i, worker_index=worker_assignment[i])
            for i in range(npartitions)
        ]
        self._lock = threading.Lock()
        session.master.register(self)

    # -- basic introspection ---------------------------------------------------

    @property
    def npartitions(self) -> int:
        return len(self.partitions)

    @property
    def is_filled(self) -> bool:
        return all(p.filled for p in self.partitions)

    def worker_of(self, partition: int) -> int:
        return self._info(partition).worker_index

    def _info(self, partition: int) -> PartitionInfo:
        if not 0 <= partition < self.npartitions:
            raise PartitionError(
                f"partition {partition} out of range [0, {self.npartitions})"
            )
        return self.partitions[partition]

    # -- partition storage plumbing -----------------------------------------------

    def _store(self, partition: int, value: Any, nrow: int, ncol: int | None,
               nbytes: int) -> None:
        info = self._info(partition)
        worker = self.session.workers[info.worker_index]
        worker.put_partition(self.object_id, partition, value, nbytes)
        with self._lock:
            info.nrow = nrow
            info.ncol = ncol
            info.nbytes = nbytes

    def reassign_worker(self, dead: int, survivor: int) -> int:
        """Move this object's partitions off a failed worker.

        The contents died with the worker, so moved partitions are marked
        unfilled; a re-executed task refills them on the survivor (writes
        are idempotent: :meth:`_store` resolves ``info.worker_index`` at
        write time, so the re-fill lands on the new worker).  Returns how
        many partitions moved.
        """
        moved = 0
        with self._lock:
            for info in self.partitions:
                if info.worker_index == dead:
                    info.worker_index = survivor
                    info.nrow = None
                    info.ncol = None
                    info.nbytes = 0
                    moved += 1
        return moved

    def get_partition(self, partition: int) -> Any:
        """Fetch one partition's contents to the caller (the master)."""
        info = self._info(partition)
        if not info.filled:
            raise PartitionError(
                f"partition {partition} of {self.kind} {self.object_id} is empty"
            )
        worker = self.session.workers[info.worker_index]
        return worker.get_partition(self.object_id, partition)

    def free(self) -> None:
        """Drop all partition contents from the workers."""
        for worker in self.session.workers:
            worker.drop_object(self.object_id)
        with self._lock:
            for info in self.partitions:
                info.nrow = None
                info.ncol = None
                info.nbytes = 0

    # -- data-parallel execution -----------------------------------------------------

    def map_partitions(self, fn: Callable, *others: "DistributedObject") -> list:
        """Run ``fn(index, this_partition, *other_partitions)`` per partition.

        ``others`` must be co-partitioned with this object (same partition
        count); partitions that live on a different worker are fetched, and
        the fetch is charged to session telemetry (co-located inputs — the
        ``clone`` pattern — stay local).
        """
        self._check_copartitioned(others)

        def task(index: int) -> Any:
            args = [self._local_partition(self, index)]
            for other in others:
                args.append(self._local_partition(other, index, relative_to=self))
            return fn(index, *args)

        return self.session.run_partition_tasks(
            [(self.worker_of(i), task, i) for i in range(self.npartitions)]
        )

    def _check_copartitioned(self, others: Sequence["DistributedObject"]) -> None:
        for other in others:
            if other.session is not self.session:
                raise PartitionError("objects belong to different sessions")
            if other.npartitions != self.npartitions:
                raise PartitionError(
                    f"co-partitioning mismatch: {self.npartitions} vs "
                    f"{other.npartitions} partitions"
                )

    def _local_partition(self, obj: "DistributedObject", index: int,
                         relative_to: "DistributedObject" | None = None) -> Any:
        value = obj.get_partition(index)
        anchor = relative_to or obj
        if obj.worker_of(index) != anchor.worker_of(index):
            self.session.telemetry.add("dr_remote_partition_fetches")
            self.session.telemetry.add("dr_remote_bytes", obj.partitions[index].nbytes)
        return value
