"""The Distributed R master: symbol table and memory manager.

"The memory manager is located on the master node. The memory manager
tracks the location and meta-data of each partition" (§4, Figure 9).
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING

from repro.errors import SessionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.dobject import DistributedObject
    from repro.dr.session import DRSession

__all__ = ["Master"]


class Master:
    """Master-side bookkeeping for one session."""

    def __init__(self, session: "DRSession") -> None:
        self._session_ref = weakref.ref(session)
        self._lock = threading.Lock()
        self._objects: dict[int, weakref.ReferenceType] = {}

    def register(self, obj: "DistributedObject") -> None:
        with self._lock:
            self._objects[obj.object_id] = weakref.ref(obj)

    def lookup(self, object_id: int) -> "DistributedObject":
        with self._lock:
            ref = self._objects.get(object_id)
        obj = ref() if ref is not None else None
        if obj is None:
            raise SessionError(f"no live distributed object with id {object_id}")
        return obj

    def live_objects(self) -> list["DistributedObject"]:
        with self._lock:
            refs = list(self._objects.values())
        return [obj for obj in (ref() for ref in refs) if obj is not None]

    def partition_map(self) -> dict[int, list[tuple[int, int]]]:
        """object_id -> [(partition index, worker index), ...] for live objects."""
        return {
            obj.object_id: [
                (p.index, p.worker_index) for p in obj.partitions
            ]
            for obj in self.live_objects()
        }

    def handle_worker_failure(self, dead: int, survivor: int) -> int:
        """Reassign every live object's partitions off a dead worker.

        Partition *metadata* survives on the master (§4's memory manager);
        the contents are gone, so moved partitions come back unfilled and
        re-executed tasks refill them on the survivor.  Returns the number
        of partitions moved.
        """
        moved = 0
        for obj in self.live_objects():
            moved += obj.reassign_worker(dead, survivor)
        return moved

    def memory_usage(self) -> dict[int, int]:
        """Bytes stored per worker, as tracked by the workers themselves."""
        session = self._session_ref()
        if session is None:
            raise SessionError("session has been destroyed")
        return {worker.index: worker.stored_bytes for worker in session.workers}

    def total_bytes(self) -> int:
        return sum(self.memory_usage().values())
