"""Distributed arrays.

Two declaration styles, matching the paper's evolution (§4):

* **Legacy, equal blocks** — ``DArray(session, dim=(6, 2), blocks=(2, 2))``:
  the array is a grid of fixed-size blocks, pre-materialized with zeros
  (Figure 7).  Every partition except the trailing edge has the same shape.
* **Flexible, unequal partitions** — ``DArray(session, npartitions=3)``:
  only the partition *count* is declared; shapes become known when data is
  loaded (e.g. from Vertica table segments, Figure 8).  Adjacent-partition
  conformability is enforced on fill: row-partitioned arrays may vary in row
  count but must agree on column count (and symmetrically for
  ``partition_by="column"`` — §4 notes data "is partitioned by rows,
  columns, or blocks").

Flexible arrays also support numpy-style arithmetic: ``A + B``, ``A * 2``,
``-A``, ``A.dot_vector(v)``, ``A.sum()`` — each elementwise operation runs
partition-parallel and yields a co-located result array.

Helper functions mirror Table 1: :func:`partitionsize` and :func:`clone`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from repro.dr.dobject import DistributedObject
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.session import DRSession

__all__ = ["DArray", "partitionsize", "clone", "repartition"]

# Operand of the elementwise operators: a co-partitioned array or a scalar.
Operand = Union["DArray", int, float, np.integer, np.floating]


class DArray(DistributedObject):
    """A row-partitioned (or block-partitioned) distributed numeric array."""

    kind = "darray"

    def __init__(
        self,
        session: "DRSession",
        npartitions: int | None = None,
        dim: tuple[int, int] | None = None,
        blocks: tuple[int, int] | None = None,
        dtype: np.dtype | type = np.float64,
        worker_assignment: Sequence[int] | None = None,
        partition_by: str = "row",
    ) -> None:
        self.dtype = np.dtype(dtype)
        if partition_by not in ("row", "column"):
            raise PartitionError(
                f"partition_by must be 'row' or 'column', got {partition_by!r}"
            )
        self.partition_by = partition_by
        if (npartitions is None) == (dim is None):
            raise PartitionError(
                "declare a darray with either npartitions= (flexible) or "
                "dim=/blocks= (legacy equal blocks)"
            )
        if dim is not None:
            if blocks is None:
                raise PartitionError("legacy declaration requires blocks=")
            if partition_by != "row":
                raise PartitionError(
                    "legacy block arrays do not take partition_by"
                )
            self._init_legacy(session, dim, blocks, worker_assignment)
        else:
            self._block_grid = None
            self._declared_dim = None
            super().__init__(session, npartitions, worker_assignment)

    def _init_legacy(self, session: "DRSession", dim: tuple[int, int],
                     blocks: tuple[int, int],
                     worker_assignment: Sequence[int] | None) -> None:
        rows, cols = int(dim[0]), int(dim[1])
        block_rows, block_cols = int(blocks[0]), int(blocks[1])
        if rows < 1 or cols < 1 or block_rows < 1 or block_cols < 1:
            raise PartitionError(f"bad darray dim={dim} blocks={blocks}")
        if block_rows > rows or block_cols > cols:
            raise PartitionError("block size exceeds array dimension")
        row_starts = list(range(0, rows, block_rows))
        col_starts = list(range(0, cols, block_cols))
        grid = []
        for r0 in row_starts:
            for c0 in col_starts:
                grid.append((
                    r0, c0,
                    min(block_rows, rows - r0),
                    min(block_cols, cols - c0),
                ))
        self._block_grid = grid
        self._declared_dim = (rows, cols)
        super().__init__(session, len(grid), worker_assignment)
        # Legacy arrays are materialized at declaration, zero-filled.
        for index, (_, _, nrow, ncol) in enumerate(grid):
            zeros = np.zeros((nrow, ncol), dtype=self.dtype)
            self._store(index, zeros, nrow, ncol, zeros.nbytes)

    # -- shape and structure -----------------------------------------------------

    @property
    def is_legacy(self) -> bool:
        return self._block_grid is not None

    @property
    def ncol(self) -> int:
        if self.is_legacy:
            return self._declared_dim[1]
        if self.partition_by == "column":
            if not self.is_filled:
                raise PartitionError(
                    "darray has unfilled partitions; ncol unknown")
            return sum(p.ncol for p in self.partitions)
        filled = [p for p in self.partitions if p.filled]
        if not filled:
            raise PartitionError("darray has no filled partitions yet")
        return filled[0].ncol

    @property
    def nrow(self) -> int:
        if self.is_legacy:
            return self._declared_dim[0]
        if self.partition_by == "column":
            filled = [p for p in self.partitions if p.filled]
            if not filled:
                raise PartitionError("darray has no filled partitions yet")
            return filled[0].nrow
        if not self.is_filled:
            raise PartitionError("darray has unfilled partitions; nrow unknown")
        return sum(p.nrow for p in self.partitions)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrow, self.ncol)

    def partition_shapes(self) -> list[tuple[int, int] | None]:
        """Per-partition (nrow, ncol), ``None`` for unfilled partitions."""
        return [
            (p.nrow, p.ncol) if p.filled else None for p in self.partitions
        ]

    # -- filling ------------------------------------------------------------------

    def fill_partition(self, index: int, values: np.ndarray) -> None:
        """Load one partition, enforcing conformability.

        Flexible arrays: any row count, but the column count must match the
        other filled partitions ("if data is row partitioned, each partition
        may have variable number of rows, but the same number of columns",
        §4).  Legacy arrays: the shape must match the declared block exactly.
        """
        array = np.asarray(values, dtype=self.dtype)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        if array.ndim != 2:
            raise PartitionError(f"darray partitions are 2-D, got ndim={array.ndim}")
        info = self._info(index)
        if self.is_legacy:
            _, _, nrow, ncol = self._block_grid[index]
            if array.shape != (nrow, ncol):
                raise PartitionError(
                    f"legacy block {index} must be {(nrow, ncol)}, got {array.shape}"
                )
        elif self.partition_by == "row":
            for other in self.partitions:
                if other.index != index and other.filled and other.ncol != array.shape[1]:
                    raise PartitionError(
                        f"partition {index} has {array.shape[1]} columns but "
                        f"partition {other.index} has {other.ncol}; row-partitioned "
                        "arrays must agree on column count"
                    )
        else:
            for other in self.partitions:
                if other.index != index and other.filled and other.nrow != array.shape[0]:
                    raise PartitionError(
                        f"partition {index} has {array.shape[0]} rows but "
                        f"partition {other.index} has {other.nrow}; column-partitioned "
                        "arrays must agree on row count"
                    )
        self._store(index, array, array.shape[0], array.shape[1], array.nbytes)
        del info  # info refreshed inside _store

    def fill_from(self, full_array: np.ndarray) -> "DArray":
        """Split a full array evenly across partitions (test/demo helper)."""
        array = np.asarray(full_array, dtype=self.dtype)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        if self.is_legacy:
            if array.shape != self._declared_dim:
                raise PartitionError(
                    f"array shape {array.shape} != declared {self._declared_dim}"
                )
            for index, (r0, c0, nrow, ncol) in enumerate(self._block_grid):
                self.fill_partition(index, array[r0:r0 + nrow, c0:c0 + ncol])
            return self
        axis_length = array.shape[0] if self.partition_by == "row" else array.shape[1]
        boundaries = np.linspace(0, axis_length, self.npartitions + 1).astype(int)
        for index in range(self.npartitions):
            start, stop = boundaries[index], boundaries[index + 1]
            if self.partition_by == "row":
                self.fill_partition(index, array[start:stop])
            else:
                self.fill_partition(index, array[:, start:stop])
        return self

    # -- materialization ------------------------------------------------------------

    def collect(self) -> np.ndarray:
        """Assemble the full array on the master (row order for flexible
        arrays; block grid order for legacy arrays)."""
        if not self.is_filled:
            raise PartitionError("cannot collect a darray with unfilled partitions")
        if self.is_legacy:
            rows, cols = self._declared_dim
            out = np.zeros((rows, cols), dtype=self.dtype)
            for index, (r0, c0, nrow, ncol) in enumerate(self._block_grid):
                out[r0:r0 + nrow, c0:c0 + ncol] = self.get_partition(index)
            return out
        parts = [self.get_partition(i) for i in range(self.npartitions)]
        if self.partition_by == "column":
            return np.hstack(parts)
        return np.vstack(parts)

    # -- updates -----------------------------------------------------------------

    def update_partitions(self, fn: Callable, *others: DistributedObject) -> "DArray":
        """Replace each partition with ``fn(index, partition, *other_parts)``."""
        self._check_copartitioned(others)

        def task(index: int) -> None:
            args = [self.get_partition(index)]
            for other in others:
                args.append(self._local_partition(other, index, relative_to=self))
            result = np.asarray(fn(index, *args), dtype=self.dtype)
            if result.ndim == 1:
                result = result.reshape(-1, 1)
            self.fill_partition(index, result)
            return None

        self.session.run_partition_tasks(
            [(self.worker_of(i), task, i) for i in range(self.npartitions)]
        )
        return self

    # -- numpy-style arithmetic (partition-parallel) --------------------------------

    def _binary_elementwise(self, other: Operand, op: Callable,
                            symbol: str) -> "DArray":
        """Elementwise op against a scalar or a co-partitioned darray."""
        if self.is_legacy:
            raise PartitionError("arithmetic supports flexible arrays")
        if not self.is_filled:
            raise PartitionError("arithmetic requires filled partitions")
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DArray(self.session, npartitions=self.npartitions,
                        dtype=np.float64, worker_assignment=assignment,
                        partition_by=self.partition_by)
        if isinstance(other, DArray):
            if other.partition_shapes() != self.partition_shapes():
                raise PartitionError(
                    f"cannot {symbol} arrays with different partition shapes: "
                    f"{self.partition_shapes()} vs {other.partition_shapes()}"
                )

            def task(index: int, mine: np.ndarray, theirs: np.ndarray) -> None:
                result.fill_partition(index, op(np.asarray(mine, dtype=np.float64),
                                                np.asarray(theirs, dtype=np.float64)))

            self.map_partitions(task, other)
        elif isinstance(other, (int, float, np.integer, np.floating)):

            def scalar_task(index: int, mine: np.ndarray) -> None:
                scalar = float(other)  # type: ignore[arg-type]
                result.fill_partition(
                    index, op(np.asarray(mine, dtype=np.float64), scalar))

            self.map_partitions(scalar_task)
        else:
            raise PartitionError(
                f"cannot {symbol} a darray with {type(other).__name__}")
        return result

    def __add__(self, other: Operand) -> "DArray":
        return self._binary_elementwise(other, np.add, "+")

    def __radd__(self, other: Operand) -> "DArray":
        return self.__add__(other)

    def __sub__(self, other: Operand) -> "DArray":
        return self._binary_elementwise(other, np.subtract, "-")

    def __mul__(self, other: Operand) -> "DArray":
        return self._binary_elementwise(other, np.multiply, "*")

    def __rmul__(self, other: Operand) -> "DArray":
        return self.__mul__(other)

    def __truediv__(self, other: Operand) -> "DArray":
        return self._binary_elementwise(other, np.divide, "/")

    def __neg__(self) -> "DArray":
        return self._binary_elementwise(-1.0, np.multiply, "*")

    def dot_vector(self, vector: np.ndarray) -> "DArray":
        """Row-partitioned matrix-vector product: returns a co-located
        (n, 1) darray holding ``self @ vector``."""
        if self.is_legacy or self.partition_by != "row":
            raise PartitionError("dot_vector requires a row-partitioned array")
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if len(vector) != self.ncol:
            raise PartitionError(
                f"vector has {len(vector)} entries, array has {self.ncol} columns"
            )
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DArray(self.session, npartitions=self.npartitions,
                        dtype=np.float64, worker_assignment=assignment)

        def task(index: int, mine: np.ndarray) -> None:
            result.fill_partition(
                index, (np.asarray(mine, dtype=np.float64) @ vector).reshape(-1, 1))

        self.map_partitions(task)
        return result

    def sum(self) -> float:
        """Distributed sum of all elements."""
        partials = self.map_partitions(
            lambda i, part: float(np.sum(np.asarray(part, dtype=np.float64))))
        return float(np.sum(partials))

    def mean(self) -> float:
        """Distributed mean of all elements."""
        partials = self.map_partitions(
            lambda i, part: (float(np.sum(np.asarray(part, dtype=np.float64))),
                             np.asarray(part).size))
        total = sum(p[0] for p in partials)
        count = sum(p[1] for p in partials)
        if count == 0:
            raise PartitionError("mean of an empty darray")
        return total / count



def partitionsize(
    array: DArray, index: int | None = None
) -> tuple[int, int] | np.ndarray:
    """Table 1's ``partitionsize(A, i)``: the size of partition ``i``, or an
    ``npartitions x 2`` matrix of all partition sizes when ``i`` is omitted."""
    if index is not None:
        shape = array.partition_shapes()[index]
        if shape is None:
            raise PartitionError(f"partition {index} is not filled")
        return shape
    shapes = array.partition_shapes()
    if any(s is None for s in shapes):
        raise PartitionError("array has unfilled partitions")
    return np.asarray(shapes, dtype=np.int64)


def clone(array: DArray, nrow: int | None = None, ncol: int | None = None,
          fill: float = 0.0) -> DArray:
    """Table 1's ``clone(A)``: a new darray with the same partition count,
    co-located partitions, and (by default) the same per-partition shape.

    ``ncol``/``nrow`` override the per-partition shape while keeping the
    partition structure, e.g. ``clone(X, ncol=1)`` builds a co-located
    response vector for regression (Figure 9).
    """
    if array.is_legacy:
        raise PartitionError("clone() supports flexible (npartitions=) arrays")
    if not array.is_filled:
        raise PartitionError("clone() requires a fully filled source array")
    assignment = [array.worker_of(i) for i in range(array.npartitions)]
    result = DArray(
        array.session,
        npartitions=array.npartitions,
        dtype=array.dtype,
        worker_assignment=assignment,
        partition_by=array.partition_by,
    )
    for index in range(array.npartitions):
        part_rows, part_cols = array.partitions[index].nrow, array.partitions[index].ncol
        rows = part_rows if nrow is None else int(nrow)
        cols = part_cols if ncol is None else int(ncol)
        result.fill_partition(index, np.full((rows, cols), fill, dtype=array.dtype))
    return result


def repartition(array: DArray, npartitions: int) -> DArray:
    """Rebalance a row-partitioned darray into ``npartitions`` even pieces.

    The in-engine analog of the *uniform distribution* transfer policy:
    after a locality-preserving load of a skewed table, ``repartition``
    removes the stragglers before iterating.  Rows keep their global order.
    """
    if array.is_legacy:
        raise PartitionError("repartition supports flexible arrays")
    if array.partition_by != "row":
        raise PartitionError("repartition supports row-partitioned arrays")
    if not array.is_filled:
        raise PartitionError("repartition requires a fully filled array")
    if npartitions < 1:
        raise PartitionError("npartitions must be >= 1")
    total_rows = array.nrow
    boundaries = np.linspace(0, total_rows, npartitions + 1).astype(int)
    result = DArray(array.session, npartitions=npartitions, dtype=array.dtype)

    # Source partition row offsets (global row ranges per source partition).
    source_offsets = np.concatenate(
        [[0], np.cumsum([p.nrow for p in array.partitions])])

    for target in range(npartitions):
        start, stop = int(boundaries[target]), int(boundaries[target + 1])
        pieces: list[np.ndarray] = []
        for source in range(array.npartitions):
            src_start = int(source_offsets[source])
            src_stop = int(source_offsets[source + 1])
            lo = max(start, src_start)
            hi = min(stop, src_stop)
            if lo >= hi:
                continue
            part = np.asarray(array.get_partition(source))
            pieces.append(part[lo - src_start:hi - src_start])
            if result.worker_of(target) != array.worker_of(source):
                moved = pieces[-1].nbytes
                array.session.telemetry.add("dr_repartition_bytes", moved)
        if pieces:
            result.fill_partition(target, np.vstack(pieces))
        else:
            width = array.ncol
            result.fill_partition(target, np.empty((0, width), dtype=array.dtype))
    return result
