"""Distributed R sessions.

:func:`start_session` is the analog of the paper's ``distributedR_start()``
(Figure 3, line 3): it brings up a master plus a set of workers — one per
(simulated) machine, each hosting ``instances_per_node`` R instances — and
exposes constructors for the distributed data structures of Table 1.

Sessions can optionally acquire their resources through the YARN resource
manager (§6): pass ``yarn=`` and the session requests one container per
worker, with locality preference for the co-located database nodes, and
releases them on shutdown.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.dr.darray import DArray
from repro.dr.dframe import DFrame
from repro.dr.dlist import DList
from repro.dr.master import Master
from repro.dr.worker import Worker
from repro.errors import SessionError
from repro.faults.plan import FaultPlan, InjectedFault
from repro.obs.trace import Tracer
from repro.vertica.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.yarn.resource_manager import ResourceManager

__all__ = ["DRSession", "start_session"]


class DRSession:
    """A running Distributed R cluster (master + workers)."""

    def __init__(
        self,
        node_count: int = 4,
        instances_per_node: int = 2,
        memory_limit_per_worker: int | None = None,
        node_offset: int = 0,
        yarn: "ResourceManager | None" = None,
        yarn_memory_per_worker: int = 2 * 2**30,
    ) -> None:
        if node_count < 1:
            raise SessionError("session requires at least one worker node")
        if instances_per_node < 1:
            raise SessionError("each worker needs at least one R instance")
        self.instances_per_node = instances_per_node
        self.telemetry = Telemetry()
        self.tracer = Tracer()
        self.faults: FaultPlan | None = None
        #: Re-executions allowed per task after a worker failure (YARN-style
        #: worker churn tolerance: a dead worker's tasks rerun on a survivor).
        self.task_retries = 2
        self._lock = threading.Lock()
        self._closed = False
        self._yarn = yarn
        self._yarn_app = None
        if yarn is not None:
            # Request one container per worker, preferring co-location with
            # the database nodes the workers will pull segments from.
            with self.tracer.span("yarn.allocate",
                                  containers=node_count) as span:
                self._yarn_app = yarn.submit_application(
                    name="distributed-r-session",
                    container_requests=[
                        {
                            "cores": instances_per_node,
                            "memory_bytes": yarn_memory_per_worker,
                            "preferred_node": node_offset + i,
                        }
                        for i in range(node_count)
                    ],
                )
                span.set(granted=len(self._yarn_app.containers),
                         pending=self._yarn_app.pending)
        self.workers = [
            Worker(
                index=i,
                node_index=node_offset + i,
                instances=instances_per_node,
                memory_limit_bytes=memory_limit_per_worker,
            )
            for i in range(node_count)
        ]
        self.master = Master(self)
        total_instances = node_count * instances_per_node
        self._pool = ThreadPoolExecutor(
            max_workers=total_instances, thread_name_prefix="dr-instance"
        )
        # Per-worker concurrency: a worker can run at most `instances` tasks.
        self._worker_slots = [
            threading.BoundedSemaphore(instances_per_node) for _ in range(node_count)
        ]

    # -- data structure constructors (Table 1) -----------------------------------

    def darray(self, npartitions: int | None = None,
               dim: tuple[int, int] | None = None,
               blocks: tuple[int, int] | None = None,
               dtype: np.dtype | type = float,
               worker_assignment: Sequence[int] | None = None,
               partition_by: str = "row") -> DArray:
        """``darray(npartitions=)`` or legacy ``darray(dim=, blocks=)``."""
        self._check_open()
        return DArray(self, npartitions=npartitions, dim=dim, blocks=blocks,
                      dtype=dtype, worker_assignment=worker_assignment,
                      partition_by=partition_by)

    def dframe(self, npartitions: int,
               worker_assignment: Sequence[int] | None = None) -> DFrame:
        """``dframe(npartitions=)``."""
        self._check_open()
        return DFrame(self, npartitions, worker_assignment)

    def dlist(self, npartitions: int,
              worker_assignment: Sequence[int] | None = None) -> DList:
        """``dlist(npartitions=)``."""
        self._check_open()
        return DList(self, npartitions, worker_assignment)

    # -- execution -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.workers)

    @property
    def total_instances(self) -> int:
        return sum(worker.instances for worker in self.workers)

    def run_partition_tasks(
        self, tasks: list[tuple[int, Callable, int]]
    ) -> list[Any]:
        """Run ``(worker_index, fn, partition_index)`` tasks in parallel.

        This is the ``foreach`` execution engine: tasks are dispatched to the
        instance pool but each worker admits at most ``instances_per_node``
        concurrent tasks (an R instance runs one task at a time).  Results
        come back in task order; the first raised exception propagates.
        """
        self._check_open()
        # Pool threads don't inherit the ambient span; capture the caller's
        # span here so every dr.task attaches to the tree that dispatched it
        # (a vft.transfer, an algorithm iteration, a prediction query).
        parent = self.tracer.current()

        def run(worker_index: int, fn: Callable, partition_index: int) -> Any:
            attempt = 0
            current = worker_index
            while True:
                try:
                    if self.workers[current].is_down:
                        raise SessionError(f"worker {current} is down")
                    slot = self._worker_slots[current]
                    with slot:
                        with self.tracer.span("dr.task", parent=parent,
                                              worker=current,
                                              partition=partition_index):
                            if self.faults is not None:
                                self.faults.perturb("dr.task", worker=current,
                                                    partition=partition_index)
                            return fn(partition_index)
                except (SessionError, InjectedFault):
                    # The worker died (injected mid-task or detected on
                    # dispatch).  Re-execute on a survivor: the master
                    # reassigns the dead worker's partitions (idempotent
                    # writes make the rerun safe), matching YARN-era worker
                    # churn recovery.
                    attempt += 1
                    survivor = self._survivor_for(current)
                    if attempt > self.task_retries or survivor is None:
                        raise
                    self.master.handle_worker_failure(current, survivor)
                    self.telemetry.add("tasks_reexecuted")
                    with self.tracer.span("fault.recovered", parent=parent,
                                          mechanism="task_reexecution",
                                          partition=partition_index,
                                          dead_worker=current,
                                          survivor=survivor):
                        pass
                    current = survivor

        futures = [
            self._pool.submit(run, worker_index, fn, partition_index)
            for worker_index, fn, partition_index in tasks
        ]
        self.telemetry.add("dr_tasks", len(futures))
        return [future.result() for future in futures]

    def _survivor_for(self, dead: int) -> int | None:
        """The next live worker after ``dead``, or None if all are down."""
        count = len(self.workers)
        for step in range(1, count):
            candidate = (dead + step) % count
            if not self.workers[candidate].is_down:
                return candidate
        return None

    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Arm a fault plan on this session (``dr.task`` injection site)."""
        plan.bind_session(self)
        with self._lock:
            self.faults = plan

    def clear_fault_plan(self) -> None:
        with self._lock:
            self.faults = None

    def foreach(self, indices: Sequence[int], fn: Callable,
                worker_for: Callable[[int], int] | None = None) -> list[Any]:
        """Paper-style ``foreach(i, 1:n, f)``: run ``fn(i)`` for each index.

        ``worker_for`` maps an index to the worker that should run it
        (defaults to round-robin).
        """
        def round_robin(i: int) -> int:
            return i % self.node_count

        mapper = worker_for if worker_for is not None else round_robin
        return self.run_partition_tasks([(mapper(i), fn, i) for i in indices])

    # -- lifecycle -----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the session, releasing YARN containers if any were held."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
        if self._yarn is not None and self._yarn_app is not None:
            with self.tracer.span(
                "yarn.release",
                containers=len(self._yarn_app.containers),
            ):
                self._yarn.release_application(self._yarn_app)

    def _check_open(self) -> None:
        with self._lock:
            closed = self._closed
        if closed:
            raise SessionError("session has been shut down")

    def __enter__(self) -> "DRSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def start_session(
    node_count: int = 4,
    instances_per_node: int = 2,
    memory_limit_per_worker: int | None = None,
    node_offset: int = 0,
    yarn: "ResourceManager | None" = None,
) -> DRSession:
    """``distributedR_start()``: bring up a Distributed R session."""
    return DRSession(
        node_count=node_count,
        instances_per_node=instances_per_node,
        memory_limit_per_worker=memory_limit_per_worker,
        node_offset=node_offset,
        yarn=yarn,
    )
