"""Distributed lists: partitioned sequences of arbitrary Python objects.

``dlist(npartitions=)`` from Table 1.  Used for model ensembles (e.g. the
random-forest trees each worker grows) and other irregular collections.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.dr.dobject import DistributedObject
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.session import DRSession

__all__ = ["DList"]


class DList(DistributedObject):
    """A partitioned distributed list."""

    kind = "dlist"

    def __init__(self, session: "DRSession", npartitions: int,
                 worker_assignment: Sequence[int] | None = None) -> None:
        super().__init__(session, npartitions, worker_assignment)

    def fill_partition(self, index: int, items: list) -> None:
        if not isinstance(items, list):
            raise PartitionError("dlist partitions are Python lists")
        nbytes = sum(sys.getsizeof(item) for item in items)
        self._store(index, list(items), len(items), None, nbytes)

    def append_to_partition(self, index: int, item: Any) -> None:
        """Append one item (creates the partition if empty)."""
        info = self._info(index)
        current = self.get_partition(index) if info.filled else []
        self.fill_partition(index, current + [item])

    def collect(self) -> list:
        """Concatenate all partitions in index order."""
        out: list = []
        for index in range(self.npartitions):
            if self.partitions[index].filled:
                out.extend(self.get_partition(index))
        return out

    @property
    def total_items(self) -> int:
        return sum(p.nrow or 0 for p in self.partitions)

    def update_partitions(self, fn: Callable, *others: DistributedObject) -> "DList":
        """Replace each partition with ``fn(index, items, *other_parts)``."""
        self._check_copartitioned(others)

        def task(index: int) -> None:
            current = self.get_partition(index) if self.partitions[index].filled else []
            args = [current]
            for other in others:
                args.append(self._local_partition(other, index, relative_to=self))
            self.fill_partition(index, fn(index, *args))
            return None

        self.session.run_partition_tasks(
            [(self.worker_of(i), task, i) for i in range(self.npartitions)]
        )
        return self
