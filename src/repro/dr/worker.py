"""Distributed R workers.

A worker is one R instance pool on one machine: it stores partitions of
distributed data structures in memory, stages incoming Vertica Fast Transfer
streams in shared-memory buffers (the paper's ``/dev/shm`` files, §3.3), and
executes partition tasks.  Workers carry a ``node_index`` so transfers can
reason about co-location with database nodes.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import PartitionError, SessionError

__all__ = ["Worker", "ShmBuffer"]


class ShmBuffer:
    """An in-memory staging file for one incoming transfer stream.

    VFT receivers append raw chunks here; once a stream completes, the
    buffered bytes are parsed into an R object (numpy array) exactly once —
    mirroring the two-step receive in §3.3.
    """

    def __init__(self, stream_id: str) -> None:
        self.stream_id = stream_id
        self._chunks: list[bytes] = []
        self._lock = threading.Lock()
        self.closed = False

    def append(self, chunk: bytes) -> None:
        with self._lock:
            if self.closed:
                raise PartitionError(f"stream {self.stream_id!r} already closed")
            self._chunks.append(bytes(chunk))

    def close(self) -> bytes:
        """Finish the stream and return the concatenated payload."""
        with self._lock:
            self.closed = True
            return b"".join(self._chunks)

    @property
    def size(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._chunks)

    @property
    def frame_count(self) -> int:
        """Number of wire frames staged so far (one append per frame)."""
        with self._lock:
            return len(self._chunks)


class Worker:
    """One Distributed R worker process group."""

    def __init__(self, index: int, node_index: int, instances: int = 1,
                 memory_limit_bytes: int | None = None) -> None:
        if instances < 1:
            raise SessionError("worker needs at least one R instance")
        self.index = index
        self.node_index = node_index
        self.instances = instances
        self.memory_limit_bytes = memory_limit_bytes
        self._store: dict[tuple[int, int], Any] = {}
        self._partition_bytes: dict[tuple[int, int], int] = {}
        self._shm: dict[str, ShmBuffer] = {}
        self._lock = threading.Lock()
        self._stored_bytes = 0
        self._down = False

    # -- liveness ----------------------------------------------------------

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    def fail(self) -> None:
        """Kill the worker: stored partitions are lost, and every storage
        or streaming call raises :class:`SessionError` until recovery."""
        with self._lock:
            self._down = True
            self._store.clear()
            self._partition_bytes.clear()
            self._shm.clear()
            self._stored_bytes = 0

    def recover(self) -> None:
        """Bring the worker back (empty — its state died with it)."""
        with self._lock:
            self._down = False

    def _check_up(self) -> None:
        with self._lock:
            down = self._down
        if down:
            raise SessionError(f"worker {self.index} is down")

    # -- partition storage -------------------------------------------------

    def put_partition(self, object_id: int, partition: int, value: Any,
                      nbytes: int) -> None:
        """Store a partition's contents, enforcing the memory limit.

        Distributed R "currently handles only data that fits in the
        aggregate memory of the cluster" (§2) — exceeding the limit raises
        rather than swapping.
        """
        self._check_up()
        with self._lock:
            key = (object_id, partition)
            previous = self._partition_bytes.get(key, 0)
            new_total = self._stored_bytes - previous + nbytes
            if self.memory_limit_bytes is not None and new_total > self.memory_limit_bytes:
                raise MemoryError(
                    f"worker {self.index}: storing partition would use "
                    f"{new_total} bytes, limit is {self.memory_limit_bytes}"
                )
            self._store[key] = value
            self._partition_bytes[key] = nbytes
            self._stored_bytes = new_total

    def get_partition(self, object_id: int, partition: int) -> Any:
        self._check_up()
        with self._lock:
            try:
                return self._store[(object_id, partition)]
            except KeyError:
                raise PartitionError(
                    f"worker {self.index} has no partition {partition} "
                    f"of object {object_id}"
                ) from None

    def has_partition(self, object_id: int, partition: int) -> bool:
        with self._lock:
            return (object_id, partition) in self._store

    def drop_partition(self, object_id: int, partition: int) -> None:
        with self._lock:
            key = (object_id, partition)
            self._store.pop(key, None)
            self._stored_bytes -= self._partition_bytes.pop(key, 0)

    def drop_object(self, object_id: int) -> None:
        with self._lock:
            keys = [k for k in self._store if k[0] == object_id]
            for key in keys:
                self._store.pop(key)
                self._stored_bytes -= self._partition_bytes.pop(key, 0)

    @property
    def stored_bytes(self) -> int:
        with self._lock:
            return self._stored_bytes

    @property
    def partition_count(self) -> int:
        with self._lock:
            return len(self._store)

    # -- shm staging for transfers -----------------------------------------------

    def open_stream(self, stream_id: str) -> ShmBuffer:
        self._check_up()
        with self._lock:
            if stream_id in self._shm:
                raise PartitionError(f"stream {stream_id!r} already open")
            buffer = ShmBuffer(stream_id)
            self._shm[stream_id] = buffer
            return buffer

    def close_stream(self, stream_id: str) -> bytes:
        self._check_up()
        with self._lock:
            try:
                buffer = self._shm.pop(stream_id)
            except KeyError:
                raise PartitionError(f"no open stream {stream_id!r}") from None
        return buffer.close()

    @property
    def open_stream_count(self) -> int:
        with self._lock:
            return len(self._shm)
