"""The Distributed R analog: master/worker engine with distributed arrays,
data frames, and lists supporting unequal partition sizes (paper §4)."""

from repro.dr.darray import DArray, clone, partitionsize, repartition
from repro.dr.dframe import DFrame
from repro.dr.dlist import DList
from repro.dr.dobject import DistributedObject, PartitionInfo
from repro.dr.master import Master
from repro.dr.session import DRSession, start_session
from repro.dr.worker import ShmBuffer, Worker

__all__ = [
    "DRSession",
    "start_session",
    "DArray",
    "DFrame",
    "DList",
    "DistributedObject",
    "PartitionInfo",
    "partitionsize",
    "clone",
    "repartition",
    "Master",
    "Worker",
    "ShmBuffer",
]
