"""Distributed data frames: partitioned dicts of equal-length column arrays.

``dframe(npartitions=)`` from Table 1.  Unlike darrays, columns may have
mixed types (numeric and string); conformability requires every filled
partition to expose the same column names in the same order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.dr.dobject import DistributedObject
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.darray import DArray
    from repro.dr.session import DRSession

__all__ = ["DFrame"]


class DFrame(DistributedObject):
    """A row-partitioned distributed data frame."""

    kind = "dframe"

    def __init__(self, session: "DRSession", npartitions: int,
                 worker_assignment: Sequence[int] | None = None) -> None:
        super().__init__(session, npartitions, worker_assignment)
        self._columns: tuple[str, ...] | None = None

    @property
    def columns(self) -> tuple[str, ...]:
        if self._columns is None:
            raise PartitionError("dframe has no filled partitions yet")
        return self._columns

    def fill_partition(self, index: int, data: dict[str, np.ndarray]) -> None:
        """Load one partition from a column dict, checking conformability."""
        if not data:
            raise PartitionError("dframe partition requires at least one column")
        arrays = {name: np.atleast_1d(np.asarray(values)) for name, values in data.items()}
        lengths = {name: len(arr) for name, arr in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise PartitionError(f"ragged dframe partition: {lengths}")
        names = tuple(arrays)
        with self._lock:
            if self._columns is None:
                self._columns = names
            elif self._columns != names:
                raise PartitionError(
                    f"partition {index} columns {names} != dframe columns "
                    f"{self._columns}"
                )
        rows = next(iter(lengths.values()))
        nbytes = sum(
            arr.nbytes if arr.dtype != object
            else sum(len(str(v)) for v in arr)
            for arr in arrays.values()
        )
        self._store(index, arrays, rows, len(names), int(nbytes))

    def collect(self) -> dict[str, np.ndarray]:
        """Concatenate all partitions into full column arrays."""
        if not self.is_filled:
            raise PartitionError("cannot collect a dframe with unfilled partitions")
        parts = [self.get_partition(i) for i in range(self.npartitions)]
        return {
            name: np.concatenate([p[name] for p in parts]) for name in self.columns
        }

    @property
    def nrow(self) -> int:
        if not self.is_filled:
            raise PartitionError("dframe has unfilled partitions; nrow unknown")
        return sum(p.nrow for p in self.partitions)

    def column_array(self, name: str) -> np.ndarray:
        """Collect a single column across partitions."""
        if name not in self.columns:
            raise PartitionError(f"dframe has no column {name!r}")
        return np.concatenate([
            self.get_partition(i)[name] for i in range(self.npartitions)
        ])

    def update_partitions(self, fn: Callable, *others: DistributedObject) -> "DFrame":
        """Replace each partition with ``fn(index, partition, *other_parts)``."""
        self._check_copartitioned(others)

        def task(index: int) -> None:
            args = [self.get_partition(index)]
            for other in others:
                args.append(self._local_partition(other, index, relative_to=self))
            self.fill_partition(index, fn(index, *args))
            return None

        self.session.run_partition_tasks(
            [(self.worker_of(i), task, i) for i in range(self.npartitions)]
        )
        return self

    # -- relational-style operations ------------------------------------------------

    def select(self, columns: list[str]) -> "DFrame":
        """A new dframe with only ``columns`` (same partitioning)."""
        for name in columns:
            if name not in self.columns:
                raise PartitionError(f"dframe has no column {name!r}")
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DFrame(self.session, self.npartitions, assignment)

        def task(index: int, part: dict) -> None:
            result.fill_partition(index, {name: part[name] for name in columns})
            return None

        self.map_partitions(task)
        return result

    def filter(self, predicate: Callable[[dict], np.ndarray]) -> "DFrame":
        """Rows where ``predicate(partition_dict)`` returns True (per row)."""
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DFrame(self.session, self.npartitions, assignment)

        def task(index: int, part: dict) -> None:
            mask = np.atleast_1d(np.asarray(predicate(part), dtype=bool))
            result.fill_partition(
                index, {name: arr[mask] for name, arr in part.items()})
            return None

        self.map_partitions(task)
        return result

    def with_column(self, name: str,
                    fn: Callable[[dict], np.ndarray]) -> "DFrame":
        """A new dframe with an added/replaced column computed per partition."""
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DFrame(self.session, self.npartitions, assignment)

        def task(index: int, part: dict) -> None:
            values = np.atleast_1d(np.asarray(fn(part)))
            rows = len(next(iter(part.values())))
            if len(values) != rows:
                raise PartitionError(
                    f"with_column produced {len(values)} values for "
                    f"{rows} rows in partition {index}"
                )
            result.fill_partition(index, {**part, name: values})
            return None

        self.map_partitions(task)
        return result

    def to_darray(self, columns: list[str] | None = None) -> "DArray":
        """Stack numeric columns into a co-located row-partitioned darray."""
        from repro.dr.darray import DArray

        names = columns if columns is not None else list(self.columns)
        for name in names:
            if name not in self.columns:
                raise PartitionError(f"dframe has no column {name!r}")
        assignment = [self.worker_of(i) for i in range(self.npartitions)]
        result = DArray(self.session, npartitions=self.npartitions,
                        worker_assignment=assignment)

        def task(index: int, part: dict) -> None:
            arrays = []
            for name in names:
                arr = np.asarray(part[name])
                if arr.dtype == object:
                    raise PartitionError(
                        f"column {name!r} is not numeric; cast or drop it "
                        "before to_darray()"
                    )
                arrays.append(arr.astype(np.float64))
            result.fill_partition(
                index,
                np.column_stack(arrays) if arrays and len(arrays[0])
                else np.empty((0, len(names))),
            )
            return None

        self.map_partitions(task)
        return result
