"""Epoch-incremental model refresh: the engine behind ``REFRESH MODEL``.

A deployed model is stamped with the committed epoch its training data was
read at (:attr:`~repro.vertica.models.ModelRecord.commit_epoch`).  Trickle
inserts land in later epochs and the model silently goes stale;
:func:`refresh_model` brings it back to the current snapshot by folding in
exactly the rows committed in ``(commit_epoch, snapshot]``:

* gaussian GLMs and naive Bayes carry *additive sufficient statistics*
  (``X'X`` / ``X'y`` / response moments; per-class moments), so the refresh
  is a pure delta fold — scan only the new epochs via
  :meth:`~repro.vertica.table.Table.scan_delta`, add their moments, and
  re-solve the small system.  Cost scales with the delta, not the table.
* every other family (Lloyd centers, SGD iterates, forests) has no additive
  state, so the refresh is a full refit at the snapshot — still driven by
  the model's recorded training provenance, through the same unified fold
  drivers.

Guards force the full refit whenever the delta cannot be trusted:

* a delete committed inside the window — the insert delta cannot express
  rows *removed* from the prefix the model already folded in;
* ``commit_epoch`` behind the ancient-history mark — the Tuple Mover may
  have re-stamped storage at purged epochs, so the window is ambiguous.

Either way the refreshed record is stamped with the *snapshot* epoch (not a
fresh commit), because that is the last epoch whose rows the model has seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.deploy.deploy import deploy_model, load_model
from repro.errors import CatalogError, ModelError
from repro.vertica.models import ModelRecord, Privilege

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["refresh_model", "RefreshResult"]

#: Algorithms refresh_model knows how to refit from training provenance.
_REFITTABLE = ("glm", "kmeans", "naivebayes", "svm", "mf", "randomforest")


@dataclass
class RefreshResult:
    """What one ``REFRESH MODEL`` invocation did."""

    model: str
    strategy: str          # "noop" | "incremental" | "refit"
    staleness_epochs: int  # how far behind the model was before the refresh
    rows_folded: int       # delta rows (incremental) or total rows (refit)
    record: ModelRecord


def _matrix(columns: dict[str, np.ndarray], names: list[str]) -> np.ndarray:
    parts = [np.asarray(columns[name], dtype=np.float64) for name in names]
    return np.column_stack(parts) if parts else np.empty((0, 0))


def _refresh_glm(model: Any, delta_features: np.ndarray,
                 delta_responses: np.ndarray, params: dict) -> Any | None:
    """Fold delta rows into a gaussian GLM's normal equations; None when the
    model carries no sufficient statistics (non-gaussian, or a pre-stats
    blob)."""
    from repro.algorithms.families import family_by_name
    from repro.algorithms.glm import GlmModel, _standard_errors

    stats = getattr(model, "sufficient_stats", None)
    if stats is None or model.family != "gaussian":
        return None
    responses = np.asarray(delta_responses, dtype=np.float64).ravel()
    if model.intercept:
        design = np.column_stack(
            [np.ones(len(delta_features)), delta_features])
    else:
        design = delta_features
    xtx = np.asarray(stats["xtx"], dtype=np.float64) + design.T @ design
    xty = np.asarray(stats["xty"], dtype=np.float64) + design.T @ responses
    n, sum_y, yty = (float(v) for v in np.asarray(stats["moments"]))
    n += len(responses)
    sum_y += float(np.sum(responses))
    yty += float(np.sum(np.square(responses)))

    p = len(xty)
    ridge = float(params.get("ridge", 0.0))
    xtwx = xtx + ridge * np.eye(p) if ridge else xtx
    try:
        beta = np.linalg.solve(xtwx, xty)
    except np.linalg.LinAlgError:
        beta, *_ = np.linalg.lstsq(xtwx, xty, rcond=None)
    # ||y - Xb||^2 expanded through the updated moments: the delta fold
    # never re-reads the prefix rows.
    deviance = float(yty - 2.0 * beta @ xty + beta @ xtx @ beta)
    null_deviance = float(yty - sum_y * sum_y / n) if n else 0.0
    family = family_by_name(model.family)
    return GlmModel(
        coefficients=beta,
        family=model.family,
        link=model.link,
        intercept=model.intercept,
        iterations=model.iterations,
        deviance=deviance,
        null_deviance=null_deviance,
        converged=True,
        n_observations=int(n),
        feature_names=list(model.feature_names),
        standard_errors=_standard_errors(xtwx, family, deviance, int(n), p),
        sufficient_stats={
            "xtx": xtx,
            "xty": xty,
            "moments": np.asarray([n, sum_y, yty], dtype=np.float64),
        },
    )


def _refresh_naive_bayes(model: Any, delta_features: np.ndarray,
                         delta_responses: np.ndarray) -> Any | None:
    """Fold delta rows into naive Bayes class moments; None when the stats
    are missing or the delta introduces an unseen class (shape change →
    refit)."""
    from repro.algorithms.naive_bayes import model_from_moments

    stats = getattr(model, "sufficient_stats", None)
    if stats is None:
        return None
    counts = np.asarray(stats["counts"], dtype=np.float64).copy()
    sums = np.asarray(stats["sums"], dtype=np.float64).copy()
    squares = np.asarray(stats["squares"], dtype=np.float64).copy()
    labels = np.asarray(delta_responses).ravel().astype(np.int64)
    if labels.min(initial=0) < 0:
        raise ModelError("naive Bayes labels must be non-negative integers")
    if labels.max(initial=-1) >= len(counts):
        return None  # new class appeared: parameter shape changes, refit
    counts += np.bincount(labels, minlength=len(counts))
    np.add.at(sums, labels, delta_features)
    np.add.at(squares, labels, np.square(delta_features))
    return model_from_moments(counts, sums, squares)


def _refit(cluster: "VerticaCluster", training: dict, snapshot) -> Any:
    """Full refit at the snapshot from the recorded training provenance."""
    from repro.algorithms import (
        LocalArray,
        hpdglm,
        hpdkmeans,
        hpdmf,
        hpdnaivebayes,
        hpdrandomforest,
        hpdsvm,
    )

    algorithm = training["algorithm"]
    if algorithm not in _REFITTABLE:
        raise ModelError(
            f"cannot refresh algorithm {algorithm!r}; "
            f"known algorithms: {list(_REFITTABLE)}"
        )
    table = cluster.catalog.get_table(training["table"])
    feature_names = list(training["features"])
    response = training.get("response")
    names = feature_names + ([response] if response else [])
    columns = table.scan_all(names, snapshot=snapshot)
    matrix = _matrix(columns, feature_names)
    npartitions = max(1, cluster.node_count)
    params = dict(training.get("params") or {})
    features = LocalArray(matrix, npartitions=npartitions)
    if algorithm == "kmeans":
        return hpdkmeans(features, **params)
    if algorithm == "mf":
        return hpdmf(features, **params)
    if not response:
        raise ModelError(
            f"training provenance for {algorithm!r} must name a response column"
        )
    responses = LocalArray(
        np.asarray(columns[response], dtype=np.float64).reshape(-1, 1),
        npartitions=npartitions,
    )
    if algorithm == "glm":
        return hpdglm(responses, features, **params)
    if algorithm == "naivebayes":
        return hpdnaivebayes(responses, features, **params)
    if algorithm == "svm":
        return hpdsvm(responses, features, **params)
    return hpdrandomforest(responses, features, **params)


def refresh_model(cluster: "VerticaCluster", name: str,
                  user: str | None = None) -> RefreshResult:
    """Bring a deployed model up to the current committed snapshot.

    The SQL surface is ``REFRESH MODEL <name>``.  Requires ``modify``
    privilege (the refresh replaces the blob).  Raises
    :class:`~repro.errors.CatalogError` when the model was deployed without
    training provenance (``deploy_model(..., training=...)``).
    """
    record = cluster.r_models.get(name, user=user, privilege=Privilege.MODIFY)
    if record.training is None:
        raise CatalogError(
            f"model {name!r} has no training provenance; redeploy with "
            "deploy_model(..., training={...}) to make it refreshable"
        )
    training = record.training
    epochs = cluster.catalog.epochs
    snapshot = epochs.snapshot()
    since = record.commit_epoch
    staleness = max(0, snapshot.epoch - since)
    # Level = staleness seen by the latest refresh; peak = worst ever seen.
    gauge = cluster.telemetry.registry.gauge("model_staleness_epochs")
    gauge.add(staleness - gauge.now)
    if since >= snapshot.epoch:
        return RefreshResult(name, "noop", 0, 0, record)

    table = cluster.catalog.get_table(training["table"])
    model = load_model(cluster, name, user=user)
    feature_names = list(training["features"])
    response = training.get("response")
    algorithm = training["algorithm"]

    new_model: Any | None = None
    strategy = "refit"
    rows_folded = 0
    delta_safe = (
        since >= epochs.ancient_history_mark
        and not table.has_deletes_between(since, snapshot)
    )
    if delta_safe and algorithm in ("glm", "naivebayes"):
        names = feature_names + ([response] if response else [])
        delta = table.scan_delta(names, since_epoch=since, snapshot=snapshot)
        delta_features = _matrix(delta, feature_names)
        rows_folded = len(delta_features)
        if rows_folded == 0:
            # Nothing visible changed in the window: restamp and return.
            record.commit_epoch = snapshot.epoch
            return RefreshResult(name, "noop", staleness, 0, record)
        delta_responses = delta[response] if response else np.empty(0)
        if algorithm == "glm":
            params = dict(training.get("params") or {})
            new_model = _refresh_glm(model, delta_features, delta_responses,
                                     params)
        else:
            new_model = _refresh_naive_bayes(model, delta_features,
                                             delta_responses)
        if new_model is not None:
            strategy = "incremental"

    if new_model is None:
        new_model = _refit(cluster, training, snapshot)
        strategy = "refit"
        rows_folded = int(new_model.n_observations)

    new_record = deploy_model(
        cluster, new_model, name,
        owner=record.owner, description=record.description,
        replace=True, training=training,
    )
    # The refreshed model has seen exactly the rows visible at the snapshot;
    # data committed while we were refreshing is the *next* refresh's delta.
    new_record.commit_epoch = snapshot.epoch
    return RefreshResult(name, strategy, staleness, rows_folded, new_record)
