"""``deploy.model``: ship a trained model into the database (§5, Figure 11).

The model is serialized, written to Vertica's DFS (replicated, checksummed),
and registered in the ``R_Models`` catalog so SQL prediction functions can
find it.  Owners can grant ``usage``/``modify`` privileges to other database
users.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.deploy.serialize import deserialize_model, serialize_model
from repro.errors import CatalogError
from repro.vertica.models import ModelRecord, Privilege

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["deploy_model", "load_model", "drop_model", "grant_model",
           "revoke_model", "export_model", "import_model", "MODEL_DFS_PREFIX"]

MODEL_DFS_PREFIX = "/drmodels/"

# Deserialized-model cache: re-reading and parsing a multi-megabyte blob for
# every UDF instance would dominate prediction time; the cache is keyed by
# (cluster, path, version) so redeploys invalidate naturally.
_MODEL_CACHE: dict[tuple[int, str, int], Any] = {}
_MODEL_CACHE_LOCK = threading.Lock()


def deploy_model(
    cluster: "VerticaCluster",
    model: Any,
    name: str,
    owner: str = "dbadmin",
    description: str = "",
    replace: bool = False,
    training: dict | None = None,
) -> ModelRecord:
    """Serialize ``model`` and store it in the database under ``name``.

    Mirrors Figure 3 line 9: ``deploy.model(model, 'rModel')``.  Returns the
    ``R_Models`` record that ``SELECT * FROM R_Models`` will show.

    ``training`` records the model's provenance — ``{"table", "features",
    "response", "algorithm", "params"}`` — which is what makes the model
    eligible for ``REFRESH MODEL`` (see :func:`repro.deploy.refresh_model`).
    """
    if not name or not name.replace("_", "").isalnum():
        raise CatalogError(
            f"model names must be alphanumeric/underscore, got {name!r}"
        )
    blob = serialize_model(model)
    path = MODEL_DFS_PREFIX + name.lower()
    if cluster.r_models.exists(name) and not replace:
        raise CatalogError(
            f"model {name!r} already exists; pass replace=True to overwrite"
        )
    info = cluster.dfs.write(path, blob, overwrite=True,
                             attributes={"model": name.lower()})
    record = ModelRecord(
        model=name,
        owner=owner,
        type=getattr(model, "model_type", "custom"),
        size=len(blob),
        description=description,
        dfs_path=path,
        training=dict(training) if training is not None else None,
    )
    # Stamp the (re)deploy with its own committed epoch from the cluster
    # clock: the catalog swap is atomic with respect to data mutations, and
    # the record shows which epoch's queries started seeing the new model.
    record.commit_epoch = cluster.catalog.epochs.stamp()
    cluster.r_models.add(record, replace=replace, user=owner)
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE.pop((id(cluster), path, info.version - 1), None)
    cluster.telemetry.add("models_deployed")
    return record


def load_model(
    cluster: "VerticaCluster",
    name: str,
    user: str | None = None,
    from_node: int | None = None,
) -> Any:
    """Fetch and deserialize a deployed model (checking usage privilege).

    ``from_node`` lets a UDF instance prefer the local DFS replica.  Results
    are cached per (cluster, path, version).
    """
    record = cluster.r_models.get(name, user=user, privilege=Privilege.USAGE)
    info = cluster.dfs.stat(record.dfs_path)
    cache_key = (id(cluster), record.dfs_path, info.version)
    with _MODEL_CACHE_LOCK:
        cached = _MODEL_CACHE.get(cache_key)
    if cached is not None:
        return cached
    blob = cluster.dfs.read(record.dfs_path, from_node=from_node)
    model = deserialize_model(blob)
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE[cache_key] = model
    return model


def drop_model(cluster: "VerticaCluster", name: str, user: str | None = None) -> None:
    """Remove a model's blob and catalog entry (requires modify privilege)."""
    record = cluster.r_models.drop(name, user=user)
    info = cluster.dfs.stat(record.dfs_path)
    cluster.dfs.delete(record.dfs_path)
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE.pop((id(cluster), record.dfs_path, info.version), None)


def export_model(cluster: "VerticaCluster", name: str, path,
                 user: str | None = None) -> int:
    """Write a deployed model's serialized blob to a local file.

    Lets one database's models move to another (or into version control);
    returns the number of bytes written.
    """
    from pathlib import Path

    record = cluster.r_models.get(name, user=user, privilege=Privilege.USAGE)
    blob = cluster.dfs.read(record.dfs_path)
    Path(path).write_bytes(blob)
    return len(blob)


def import_model(cluster: "VerticaCluster", path, name: str,
                 owner: str = "dbadmin", description: str = "",
                 replace: bool = False) -> ModelRecord:
    """Deploy a model from a blob previously written by :func:`export_model`.

    The blob is validated by deserializing it before registration.
    """
    from pathlib import Path

    blob = Path(path).read_bytes()
    model = deserialize_model(blob)  # validates format and codec
    return deploy_model(cluster, model, name, owner=owner,
                        description=description, replace=replace)


def grant_model(cluster: "VerticaCluster", name: str, user: str,
                privilege: str = Privilege.USAGE,
                granting_user: str | None = None) -> None:
    """Grant a model privilege to a database user."""
    cluster.r_models.grant(name, user, privilege, granting_user=granting_user)


def revoke_model(cluster: "VerticaCluster", name: str, user: str,
                 privilege: str = Privilege.USAGE,
                 revoking_user: str | None = None) -> None:
    """Revoke a model privilege from a database user."""
    cluster.r_models.revoke(name, user, privilege, revoking_user=revoking_user)
