"""In-database model deployment and prediction (paper §5)."""

from repro.deploy.deploy import (
    deploy_model,
    drop_model,
    export_model,
    grant_model,
    import_model,
    load_model,
    revoke_model,
)
from repro.deploy.predict_functions import (
    GlmPredict,
    KmeansPredict,
    MfPredict,
    NbPredict,
    RfPredict,
    SvmPredict,
    make_prediction_function,
    standard_prediction_functions,
)
from repro.deploy.refresh import RefreshResult, refresh_model
from repro.deploy.serialize import (
    deserialize_model,
    register_model_codec,
    registered_model_types,
    serialize_model,
)

__all__ = [
    "deploy_model",
    "load_model",
    "drop_model",
    "grant_model",
    "revoke_model",
    "export_model",
    "import_model",
    "serialize_model",
    "deserialize_model",
    "register_model_codec",
    "registered_model_types",
    "refresh_model",
    "RefreshResult",
    "GlmPredict",
    "KmeansPredict",
    "RfPredict",
    "SvmPredict",
    "MfPredict",
    "NbPredict",
    "make_prediction_function",
    "standard_prediction_functions",
]
