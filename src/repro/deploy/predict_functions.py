"""In-database prediction UDFs: ``GlmPredict``, ``KmeansPredict``, ``RfPredict``.

These are the transform functions of §5 / Figures 15–16: invoked as

    SELECT glmPredict(a, b USING PARAMETERS model='rModel')
    OVER (PARTITION BEST) FROM mytable2

the planner fans out many instances per node, each of which loads the model
from the local DFS replica (cached), stacks its input columns into a
matrix, and scores it vectorized.  Users can register their own prediction
functions for custom model types via :func:`make_prediction_function`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.deploy.deploy import load_model
from repro.errors import ExecutionError, ModelError
from repro.obs.trace import add_to_current
from repro.storage.encoding import ColumnSchema, SqlType
from repro.vertica.udtf import TransformFunction, UdtfContext, UdtfSignature

__all__ = [
    "GlmPredict",
    "KmeansPredict",
    "RfPredict",
    "SvmPredict",
    "MfPredict",
    "NbPredict",
    "make_prediction_function",
    "standard_prediction_functions",
]


def _stack_features(args: dict[str, np.ndarray]) -> np.ndarray:
    if not args:
        raise ExecutionError("prediction functions require feature arguments")
    columns = [np.asarray(arr, dtype=np.float64) for arr in args.values()]
    return np.column_stack(columns)


class _PredictBase(TransformFunction):
    """Shared plumbing: resolve the model, check its type, score features."""

    expected_model_type = ""
    output_column = "prediction"
    output_sql_type = SqlType.FLOAT

    def signature(self) -> UdtfSignature:
        # At least one numeric feature column; 'model' must name a deployed
        # model.  Extra parameters (e.g. glmPredict's type=) stay open-ended.
        return UdtfSignature(
            min_args=1,
            numeric_args=True,
            required_parameters=frozenset({"model"}),
            model_parameter="model",
        )

    def output_schema(self, params: Mapping[str, Any]) -> list[ColumnSchema]:
        return [ColumnSchema(self.output_column, self.output_sql_type)]

    def _resolve_model(self, ctx: UdtfContext, params: Mapping[str, Any]):
        model_name = params.get("model")
        if not model_name:
            raise ExecutionError(
                f"{self.name} requires a 'model' parameter naming a deployed model"
            )
        model = load_model(
            ctx.cluster, str(model_name), user=ctx.session_user,
            from_node=ctx.node_index,
        )
        actual = getattr(model, "model_type", "custom")
        if self.expected_model_type and actual != self.expected_model_type:
            raise ModelError(
                f"{self.name} expects a {self.expected_model_type!r} model, "
                f"{model_name!r} is {actual!r}"
            )
        return model

    def score(self, model, features: np.ndarray, params: Mapping[str, Any]) -> np.ndarray:
        raise NotImplementedError

    def process(self, ctx, args, params):
        model = self._resolve_model(ctx, params)
        features = _stack_features(args)
        if len(features) == 0:
            return {self.output_column: np.empty(0, dtype=self.output_sql_type.numpy_dtype)}
        predictions = self.score(model, features, params)
        ctx.cluster.telemetry.add("rows_predicted", len(features))
        # Ambient span is this instance's udtf.instance span.
        add_to_current(rows_predicted=len(features))
        return {self.output_column: predictions}

    def process_stream(self, ctx, batches, params):
        """Score batchwise: resolve the model once, then predict each batch
        as it arrives, holding one batch of features at a time.  Rows score
        independently in every model here, so the concatenated predictions
        match the eager single-matrix scoring exactly.
        """
        model = self._resolve_model(ctx, params)
        chunks: list[np.ndarray] = []
        for args in batches:
            features = _stack_features(args)
            if len(features) == 0:
                continue
            chunks.append(np.asarray(self.score(model, features, params)))
            ctx.cluster.telemetry.add("rows_predicted", len(features))
            add_to_current(rows_predicted=len(features))
        if not chunks:
            return {self.output_column: np.empty(0, dtype=self.output_sql_type.numpy_dtype)}
        return {self.output_column: np.concatenate(chunks)}


class GlmPredict(_PredictBase):
    """Apply a deployed GLM's coefficients to table columns.

    ``USING PARAMETERS model='name' [, type='response'|'link']``.
    """

    name = "glmPredict"
    expected_model_type = "glm"

    def score(self, model, features, params):
        response_type = str(params.get("type", "response"))
        return np.asarray(
            model.predict(features, response_type=response_type), dtype=np.float64
        )


class KmeansPredict(_PredictBase):
    """Map each input row to its nearest deployed K-means center."""

    name = "kmeansPredict"
    expected_model_type = "kmeans"
    output_column = "cluster"
    output_sql_type = SqlType.INTEGER

    def score(self, model, features, params):
        return np.asarray(model.predict(features), dtype=np.int64)


class RfPredict(_PredictBase):
    """Score rows with a deployed random forest (vote or mean)."""

    name = "rfPredict"
    expected_model_type = "randomforest"

    def score(self, model, features, params):
        predictions = model.predict(features)
        return np.asarray(predictions, dtype=np.float64)


class SvmPredict(_PredictBase):
    """Classify rows with a deployed linear SVM (0/1 labels)."""

    name = "svmPredict"
    expected_model_type = "svm"
    output_column = "label"
    output_sql_type = SqlType.INTEGER

    def score(self, model, features, params):
        return np.asarray(model.predict(features), dtype=np.int64)


class MfPredict(_PredictBase):
    """Predicted ratings from a deployed factorization.

    Input columns are ``(user, item)`` id pairs rather than a dense feature
    matrix — the sparse layout the factorization trained on.
    """

    name = "mfPredict"
    expected_model_type = "mf"

    def score(self, model, features, params):
        return np.asarray(model.predict(features), dtype=np.float64)


class NbPredict(_PredictBase):
    """Most-likely class from a deployed Gaussian naive Bayes model."""

    name = "nbPredict"
    expected_model_type = "naivebayes"
    output_column = "label"
    output_sql_type = SqlType.INTEGER

    def score(self, model, features, params):
        return np.asarray(model.predict(features), dtype=np.int64)


class _CustomPredict(_PredictBase):
    """A user-registered prediction function for a custom model type."""

    def __init__(self, name: str, expected_model_type: str,
                 score_fn: Callable[[Any, np.ndarray, Mapping[str, Any]], np.ndarray],
                 output_column: str = "prediction",
                 output_sql_type: SqlType = SqlType.FLOAT) -> None:
        self.name = name
        self.expected_model_type = expected_model_type
        self._score_fn = score_fn
        self.output_column = output_column
        self.output_sql_type = output_sql_type

    def score(self, model, features, params):
        return np.asarray(self._score_fn(model, features, params))


def make_prediction_function(
    name: str,
    model_type: str,
    score_fn: Callable[[Any, np.ndarray, Mapping[str, Any]], np.ndarray],
    output_column: str = "prediction",
    output_sql_type: SqlType = SqlType.FLOAT,
) -> TransformFunction:
    """Build a prediction UDF for a custom model type.

    "Users have the flexibility to create their own prediction functions for
    custom models and register them with Vertica" (§5) — register the result
    with :meth:`VerticaCluster.register_udtf`.
    """
    if not name:
        raise ExecutionError("prediction function requires a name")
    return _CustomPredict(name, model_type, score_fn, output_column, output_sql_type)


def standard_prediction_functions() -> list[TransformFunction]:
    """The prediction UDFs installed by default."""
    return [GlmPredict(), KmeansPredict(), RfPredict(), SvmPredict(),
            MfPredict(), NbPredict()]
