"""Versioned model serialization (no pickle on the wire).

``deploy.model`` needs to ship R model objects into the database: "models
are first serialized and then transferred to the database … stored as binary
blobs in Vertica's distributed file system" (§5).  The envelope here is a
registry-driven binary format:

    magic "RMDL1" | u16 version | type name | metadata JSON | numpy sections

Each model class registers a codec (``to_state`` / ``from_state``) turning
the model into a dict of JSON-able metadata plus named numpy arrays.
Restricting deserialization to registered codecs avoids pickle's
arbitrary-code-execution surface — a real concern for blobs stored in a
shared database.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Any, Callable

import numpy as np

from repro.errors import SerializationError

__all__ = [
    "serialize_model",
    "deserialize_model",
    "register_model_codec",
    "registered_model_types",
    "pack_sufficient_stats",
    "unpack_sufficient_stats",
]

_MAGIC = b"RMDL1"
_VERSION = 1


class _Codec:
    def __init__(self, cls: type,
                 to_state: Callable[[Any], tuple[dict, dict[str, np.ndarray]]],
                 from_state: Callable[[dict, dict[str, np.ndarray]], Any]) -> None:
        self.cls = cls
        self.to_state = to_state
        self.from_state = from_state


_CODECS: dict[str, _Codec] = {}


def register_model_codec(type_name, cls, to_state, from_state) -> None:
    """Register (or replace) the codec for one model type.

    ``to_state(model) -> (metadata_dict, arrays_dict)`` and
    ``from_state(metadata, arrays) -> model``.
    """
    if not type_name:
        raise SerializationError("model type name must be non-empty")
    _CODECS[type_name] = _Codec(cls, to_state, from_state)


def registered_model_types() -> list[str]:
    return sorted(_CODECS)


def _codec_for_model(model: Any) -> tuple[str, _Codec]:
    type_name = getattr(model, "model_type", None)
    if type_name is None:
        raise SerializationError(
            f"{type(model).__name__} has no model_type attribute"
        )
    codec = _CODECS.get(type_name)
    if codec is None:
        raise SerializationError(
            f"no codec registered for model type {type_name!r}; "
            f"known types: {registered_model_types()}"
        )
    return type_name, codec


def serialize_model(model: Any) -> bytes:
    """Serialize a registered model into the versioned envelope."""
    type_name, codec = _codec_for_model(model)
    metadata, arrays = codec.to_state(model)
    try:
        metadata_json = json.dumps(metadata).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"model metadata is not JSON-able: {exc}") from exc
    type_bytes = type_name.encode("utf-8")
    parts = [
        _MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<I", len(type_bytes)),
        type_bytes,
        struct.pack("<I", len(metadata_json)),
        metadata_json,
        struct.pack("<I", len(arrays)),
    ]
    for name, array in arrays.items():
        buffer = io.BytesIO()
        np.save(buffer, np.asarray(array), allow_pickle=False)
        payload = buffer.getvalue()
        name_bytes = name.encode("utf-8")
        parts.append(struct.pack("<H", len(name_bytes)))
        parts.append(name_bytes)
        parts.append(struct.pack("<Q", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def deserialize_model(data: bytes) -> Any:
    """Inverse of :func:`serialize_model`."""
    if not data.startswith(_MAGIC):
        raise SerializationError("bad model blob magic")
    offset = len(_MAGIC)
    (version,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if version != _VERSION:
        raise SerializationError(f"unsupported model envelope version {version}")
    (type_length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    type_name = data[offset:offset + type_length].decode("utf-8")
    offset += type_length
    (metadata_length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    try:
        metadata = json.loads(data[offset:offset + metadata_length].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"corrupt model metadata: {exc}") from exc
    offset += metadata_length
    (array_count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    arrays: dict[str, np.ndarray] = {}
    for _ in range(array_count):
        (name_length,) = struct.unpack_from("<H", data, offset)
        offset += 2
        name = data[offset:offset + name_length].decode("utf-8")
        offset += name_length
        (payload_length,) = struct.unpack_from("<Q", data, offset)
        offset += 8
        payload = data[offset:offset + payload_length]
        if len(payload) != payload_length:
            raise SerializationError(f"truncated array section {name!r}")
        offset += payload_length
        arrays[name] = np.load(io.BytesIO(payload), allow_pickle=False)
    codec = _CODECS.get(type_name)
    if codec is None:
        raise SerializationError(
            f"blob is a {type_name!r} model but no codec is registered"
        )
    return codec.from_state(metadata, arrays)


# -- built-in codecs --------------------------------------------------------


def pack_sufficient_stats(arrays: dict, metadata: dict, stats: dict | None) -> None:
    """Flatten a model's additive sufficient statistics into array sections.

    Stored under ``ss.<key>`` names with the key list in metadata, so codecs
    stay backward compatible with blobs written before stats existed.
    """
    if stats is None:
        return
    metadata["stat_keys"] = sorted(stats)
    for key in stats:
        arrays[f"ss.{key}"] = np.asarray(stats[key])


def unpack_sufficient_stats(metadata: dict, arrays: dict) -> dict | None:
    """Inverse of :func:`pack_sufficient_stats` (None when absent)."""
    keys = metadata.get("stat_keys")
    if not keys:
        return None
    return {key: arrays[f"ss.{key}"] for key in keys}


def _register_builtin_codecs() -> None:
    from repro.algorithms.glm import GlmModel
    from repro.algorithms.kmeans import KMeansModel
    from repro.algorithms.mf import MfModel
    from repro.algorithms.naive_bayes import NaiveBayesModel
    from repro.algorithms.random_forest import DecisionTree, RandomForestModel
    from repro.algorithms.svm import SvmModel

    def glm_to_state(model: GlmModel):
        metadata = {
            "family": model.family,
            "link": model.link,
            "intercept": model.intercept,
            "iterations": model.iterations,
            "deviance": model.deviance,
            "null_deviance": model.null_deviance,
            "converged": model.converged,
            "n_observations": model.n_observations,
            "feature_names": model.feature_names,
            "has_se": model.standard_errors is not None,
        }
        arrays = {"coefficients": model.coefficients}
        if model.standard_errors is not None:
            arrays["standard_errors"] = model.standard_errors
        pack_sufficient_stats(arrays, metadata, model.sufficient_stats)
        return metadata, arrays

    def glm_from_state(metadata, arrays):
        return GlmModel(
            coefficients=arrays["coefficients"],
            family=metadata["family"],
            link=metadata["link"],
            intercept=metadata["intercept"],
            iterations=metadata["iterations"],
            deviance=metadata["deviance"],
            null_deviance=metadata["null_deviance"],
            converged=metadata["converged"],
            n_observations=metadata["n_observations"],
            feature_names=list(metadata["feature_names"]),
            standard_errors=arrays.get("standard_errors"),
            sufficient_stats=unpack_sufficient_stats(metadata, arrays),
        )

    register_model_codec("glm", GlmModel, glm_to_state, glm_from_state)

    def naive_bayes_to_state(model: NaiveBayesModel):
        metadata = {"n_observations": model.n_observations}
        arrays = {
            "log_priors": model.class_log_priors,
            "means": model.means,
            "variances": model.variances,
        }
        pack_sufficient_stats(arrays, metadata, model.sufficient_stats)
        return metadata, arrays

    def naive_bayes_from_state(metadata, arrays):
        return NaiveBayesModel(
            class_log_priors=arrays["log_priors"],
            means=arrays["means"],
            variances=arrays["variances"],
            n_observations=metadata["n_observations"],
            sufficient_stats=unpack_sufficient_stats(metadata, arrays),
        )

    register_model_codec(
        "naivebayes", NaiveBayesModel, naive_bayes_to_state, naive_bayes_from_state
    )

    def svm_to_state(model: SvmModel):
        metadata = {
            "bias": model.bias,
            "regularization": model.regularization,
            "iterations": model.iterations,
            "converged": model.converged,
            "n_observations": model.n_observations,
            "feature_names": model.feature_names,
        }
        return metadata, {"weights": model.weights}

    def svm_from_state(metadata, arrays):
        return SvmModel(
            weights=arrays["weights"],
            bias=metadata["bias"],
            regularization=metadata["regularization"],
            iterations=metadata["iterations"],
            converged=metadata["converged"],
            n_observations=metadata["n_observations"],
            feature_names=list(metadata["feature_names"]),
        )

    register_model_codec("svm", SvmModel, svm_to_state, svm_from_state)

    def mf_to_state(model: MfModel):
        metadata = {
            "rank": model.rank,
            "regularization": model.regularization,
            "iterations": model.iterations,
            "converged": model.converged,
            "n_observations": model.n_observations,
            "train_rmse": model.train_rmse,
        }
        arrays = {
            "user_factors": model.user_factors,
            "item_factors": model.item_factors,
        }
        return metadata, arrays

    def mf_from_state(metadata, arrays):
        return MfModel(
            user_factors=arrays["user_factors"],
            item_factors=arrays["item_factors"],
            rank=metadata["rank"],
            regularization=metadata["regularization"],
            iterations=metadata["iterations"],
            converged=metadata["converged"],
            n_observations=metadata["n_observations"],
            train_rmse=metadata["train_rmse"],
        )

    register_model_codec("mf", MfModel, mf_to_state, mf_from_state)

    def kmeans_to_state(model: KMeansModel):
        metadata = {
            "inertia": model.inertia,
            "iterations": model.iterations,
            "converged": model.converged,
            "n_observations": model.n_observations,
        }
        arrays = {"centers": model.centers, "cluster_sizes": model.cluster_sizes}
        return metadata, arrays

    def kmeans_from_state(metadata, arrays):
        return KMeansModel(
            centers=arrays["centers"],
            inertia=metadata["inertia"],
            iterations=metadata["iterations"],
            converged=metadata["converged"],
            n_observations=metadata["n_observations"],
            cluster_sizes=arrays["cluster_sizes"],
        )

    register_model_codec("kmeans", KMeansModel, kmeans_to_state, kmeans_from_state)

    def forest_to_state(model: RandomForestModel):
        metadata = {
            "task": model.task,
            "n_classes": model.n_classes,
            "n_features": model.n_features,
            "n_observations": model.n_observations,
            "n_trees": model.n_trees,
        }
        arrays: dict[str, np.ndarray] = {}
        for i, tree in enumerate(model.trees):
            arrays[f"t{i}.feature"] = tree.feature
            arrays[f"t{i}.threshold"] = tree.threshold
            arrays[f"t{i}.left"] = tree.left
            arrays[f"t{i}.right"] = tree.right
            arrays[f"t{i}.value"] = tree.value
        return metadata, arrays

    def forest_from_state(metadata, arrays):
        trees = []
        for i in range(metadata["n_trees"]):
            trees.append(DecisionTree(
                feature=arrays[f"t{i}.feature"],
                threshold=arrays[f"t{i}.threshold"],
                left=arrays[f"t{i}.left"],
                right=arrays[f"t{i}.right"],
                value=arrays[f"t{i}.value"],
                task=metadata["task"],
            ))
        return RandomForestModel(
            trees=trees,
            task=metadata["task"],
            n_classes=metadata["n_classes"],
            n_features=metadata["n_features"],
            n_observations=metadata["n_observations"],
        )

    register_model_codec(
        "randomforest", RandomForestModel, forest_to_state, forest_from_state
    )


_register_builtin_codecs()
