"""Scheduling policies for the resource manager.

"YARN uses a two level scheduler, supports different allocation policies
such as capacity and fairness, and is cognizant of data locality" (§6).
Schedulers order the pending request queue; the resource manager then
places each chosen request on a node, preferring the request's locality
hint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ResourceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.yarn.resource_manager import Application, ContainerRequest

__all__ = ["Scheduler", "FifoScheduler", "CapacityScheduler", "FairScheduler",
           "make_scheduler"]


class Scheduler:
    """Orders pending container requests for allocation."""

    name = "abstract"

    def order(self, pending: list["ContainerRequest"],
              applications: dict[int, "Application"]) -> list["ContainerRequest"]:
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Strict submission order."""

    name = "fifo"

    def order(self, pending, applications):
        return sorted(pending, key=lambda request: request.sequence)


class CapacityScheduler(Scheduler):
    """Queues with configured capacity shares.

    Each application belongs to a queue; queues whose current usage is
    furthest *below* their configured capacity fraction get priority.  This
    is how the integrated product lets Vertica hold a guaranteed share while
    Distributed R sessions use the rest.
    """

    name = "capacity"

    def __init__(self, queue_capacities: dict[str, float] | None = None) -> None:
        self.queue_capacities = dict(queue_capacities or {"default": 1.0})
        total = sum(self.queue_capacities.values())
        if total <= 0:
            raise ResourceError("queue capacities must sum to a positive value")
        self.queue_capacities = {
            name: share / total for name, share in self.queue_capacities.items()
        }

    def queue_share(self, queue: str) -> float:
        return self.queue_capacities.get(queue, 0.0)

    def order(self, pending, applications):
        def headroom(request: "ContainerRequest") -> tuple:
            app = applications[request.application_id]
            capacity = self.queue_share(app.queue)
            if capacity <= 0:
                # Unknown queues go last but are still serviceable.
                return (1, 0.0, request.sequence)
            usage_fraction = app.cores_allocated / max(capacity, 1e-9)
            return (0, usage_fraction, request.sequence)

        return sorted(pending, key=headroom)


class FairScheduler(Scheduler):
    """Least-allocated application first (max-min fairness over cores)."""

    name = "fair"

    def order(self, pending, applications):
        return sorted(
            pending,
            key=lambda request: (
                applications[request.application_id].cores_allocated,
                request.sequence,
            ),
        )


def make_scheduler(policy: str, queue_capacities: dict[str, float] | None = None
                   ) -> Scheduler:
    """Build a scheduler by policy name: ``fifo``, ``capacity``, ``fair``."""
    if policy == "fifo":
        return FifoScheduler()
    if policy == "capacity":
        return CapacityScheduler(queue_capacities)
    if policy == "fair":
        return FairScheduler()
    raise ResourceError(f"unknown scheduling policy {policy!r}")
