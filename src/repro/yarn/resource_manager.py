"""The YARN-style resource manager brokering Vertica and Distributed R.

Usage pattern from §6: Vertica submits once for *long-term* resources
("releasing resources and tearing down a database is costly"); each
Distributed R session submits on start with user-specified cores/memory and
a locality preference toward the database nodes, and releases on shutdown.

The manager is synchronous: :meth:`submit_application` allocates what it can
immediately (honoring the scheduler policy and locality hints) and leaves
the remainder pending; :meth:`release_application` frees resources and
retries the pending queue.  ``wait=True`` turns unsatisfied submissions into
errors so callers can fall back.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.vertica.telemetry import Telemetry
from repro.yarn.container import Container
from repro.yarn.scheduler import Scheduler, make_scheduler

__all__ = ["NodeCapacity", "ContainerRequest", "Application", "ResourceManager"]

_APPLICATION_IDS = itertools.count(1)
_REQUEST_SEQUENCE = itertools.count(1)


@dataclass
class NodeCapacity:
    """One machine's resources as seen by the resource manager."""

    cores: int
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_bytes < 1:
            raise ResourceError("node capacity must be positive")


@dataclass
class ContainerRequest:
    """One outstanding ask for a container."""

    application_id: int
    cores: int
    memory_bytes: int
    preferred_node: int | None = None
    sequence: int = field(default_factory=lambda: next(_REQUEST_SEQUENCE))

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_bytes < 1:
            raise ResourceError("container request must be positive")


@dataclass
class Application:
    """A framework instance (the database, or one Distributed R session)."""

    application_id: int
    name: str
    queue: str
    containers: list[Container] = field(default_factory=list)
    pending: int = 0

    @property
    def cores_allocated(self) -> int:
        return sum(c.cores for c in self.containers)

    @property
    def memory_allocated(self) -> int:
        return sum(c.memory_bytes for c in self.containers)

    @property
    def is_satisfied(self) -> bool:
        return self.pending == 0

    def locality_fraction(self) -> float:
        """Fraction of containers placed on their preferred node."""
        preferred = [c for c in self.containers if getattr(c, "_preferred_hit", None) is not None]
        if not preferred:
            return 0.0
        hits = sum(1 for c in preferred if c._preferred_hit)
        return hits / len(preferred)


class ResourceManager:
    """Cluster-wide allocator with pluggable scheduling policy."""

    def __init__(self, nodes: list[NodeCapacity], policy: str = "capacity",
                 queue_capacities: dict[str, float] | None = None,
                 telemetry: Telemetry | None = None) -> None:
        if not nodes:
            raise ResourceError("resource manager requires at least one node")
        self.nodes = list(nodes)
        self.telemetry = telemetry or Telemetry()
        self.scheduler: Scheduler = make_scheduler(policy, queue_capacities)
        self._lock = threading.Lock()
        self._free_cores = [n.cores for n in nodes]
        self._free_memory = [n.memory_bytes for n in nodes]
        self._applications: dict[int, Application] = {}
        self._pending: list[ContainerRequest] = []

    # -- introspection -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def free_resources(self) -> list[tuple[int, int]]:
        with self._lock:
            return list(zip(self._free_cores, self._free_memory))

    def utilization(self) -> float:
        """Fraction of total cores currently allocated."""
        with self._lock:
            total = sum(n.cores for n in self.nodes)
            free = sum(self._free_cores)
        return (total - free) / total if total else 0.0

    def application(self, application_id: int) -> Application:
        with self._lock:
            try:
                return self._applications[application_id]
            except KeyError:
                raise ResourceError(f"no application {application_id}") from None

    def pending_requests(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- submission / release -------------------------------------------------

    def submit_application(
        self,
        name: str,
        container_requests: list[dict],
        queue: str = "default",
        require_all: bool = False,
    ) -> Application:
        """Register an application and try to allocate its containers.

        Each request dict has ``cores``, ``memory_bytes``, and optional
        ``preferred_node``.  With ``require_all=True`` an unsatisfiable
        submission is rolled back and raises :class:`ResourceError`.
        """
        app = Application(
            application_id=next(_APPLICATION_IDS), name=name, queue=queue
        )
        requests = [
            ContainerRequest(
                application_id=app.application_id,
                cores=int(spec.get("cores", 1)),
                memory_bytes=int(spec.get("memory_bytes", 1 << 30)),
                preferred_node=spec.get("preferred_node"),
            )
            for spec in container_requests
        ]
        with self._lock:
            self._applications[app.application_id] = app
            self._pending.extend(requests)
            app.pending = len(requests)
            self._allocate_pending_locked()
            if require_all and not app.is_satisfied:
                self._rollback_locked(app)
                raise ResourceError(
                    f"cannot satisfy all {len(requests)} containers for "
                    f"{name!r} (free: {list(zip(self._free_cores, self._free_memory))})"
                )
        return app

    def release_application(self, app: Application) -> None:
        """Free the application's containers and retry the pending queue."""
        with self._lock:
            stored = self._applications.pop(app.application_id, None)
            if stored is None:
                raise ResourceError(f"application {app.application_id} is not registered")
            for container in stored.containers:
                self._free_cores[container.node_index] += container.cores
                self._free_memory[container.node_index] += container.memory_bytes
                container.release()
                self.telemetry.add("yarn_containers_released")
            stored.containers.clear()
            self._pending = [
                r for r in self._pending if r.application_id != app.application_id
            ]
            self._allocate_pending_locked()

    # -- allocation engine ---------------------------------------------------------

    def _allocate_pending_locked(self) -> None:
        progressed = True
        while progressed and self._pending:
            progressed = False
            ordered = self.scheduler.order(self._pending, self._applications)
            for request in ordered:
                node = self._place_locked(request)
                if node is None:
                    continue
                app = self._applications[request.application_id]
                container = Container(
                    node_index=node,
                    cores=request.cores,
                    memory_bytes=request.memory_bytes,
                    application_id=app.application_id,
                )
                container._preferred_hit = (
                    None if request.preferred_node is None
                    else node == request.preferred_node
                )
                container.start()
                # Telemetry instrument locks are leaves: acquired under the
                # manager lock, never the other way around.
                self.telemetry.add("yarn_containers_granted")
                app.containers.append(container)
                app.pending -= 1
                self._free_cores[node] -= request.cores
                self._free_memory[node] -= request.memory_bytes
                self._pending.remove(request)
                progressed = True
                break  # re-order after every grant (shares changed)

    def _place_locked(self, request: ContainerRequest) -> int | None:
        """Pick a node: the preferred one if it fits, else the freest fit."""

        def fits(node: int) -> bool:
            return (
                self._free_cores[node] >= request.cores
                and self._free_memory[node] >= request.memory_bytes
            )

        if request.preferred_node is not None:
            preferred = request.preferred_node % self.node_count
            if fits(preferred):
                return preferred
        candidates = [n for n in range(self.node_count) if fits(n)]
        if not candidates:
            return None
        return max(candidates, key=lambda n: (self._free_cores[n], -n))

    def _rollback_locked(self, app: Application) -> None:
        for container in app.containers:
            self._free_cores[container.node_index] += container.cores
            self._free_memory[container.node_index] += container.memory_bytes
            container.release()
            self.telemetry.add("yarn_containers_released")
        app.containers.clear()
        self._pending = [
            r for r in self._pending if r.application_id != app.application_id
        ]
        self._applications.pop(app.application_id, None)
