"""YARN-style resource management: two-level scheduling, containers, and
cgroup isolation between the database and Distributed R (paper §6)."""

from repro.yarn.container import Cgroup, Container, ContainerState
from repro.yarn.resource_manager import (
    Application,
    ContainerRequest,
    NodeCapacity,
    ResourceManager,
)
from repro.yarn.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    Scheduler,
    make_scheduler,
)

__all__ = [
    "ResourceManager",
    "NodeCapacity",
    "Application",
    "ContainerRequest",
    "Container",
    "ContainerState",
    "Cgroup",
    "Scheduler",
    "FifoScheduler",
    "CapacityScheduler",
    "FairScheduler",
    "make_scheduler",
]
