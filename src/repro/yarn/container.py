"""Containers and cgroup-style enforcement.

"When scheduled on the same nodes, Vertica and Distributed R processes are
isolated using Linux cgroups. These enforcement mechanisms ensure that each
process is restricted to the allocated amount of CPU and memory usage" (§6).
A :class:`Container` is one granted allocation; its :class:`Cgroup` tracks
simulated usage and rejects work beyond the limits.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import ResourceError

__all__ = ["ContainerState", "Cgroup", "Container"]

_CONTAINER_IDS = itertools.count(1)


class ContainerState(enum.Enum):
    ALLOCATED = "allocated"
    RUNNING = "running"
    RELEASED = "released"


class Cgroup:
    """Simulated cgroup: bounded CPU shares and memory bytes."""

    def __init__(self, cores: int, memory_bytes: int) -> None:
        if cores < 1 or memory_bytes < 1:
            raise ResourceError("cgroup limits must be positive")
        self.cores = cores
        self.memory_bytes = memory_bytes
        self._lock = threading.Lock()
        self._cpu_in_use = 0
        self._memory_in_use = 0
        self.oom_kills = 0
        self.cpu_throttles = 0

    def acquire_cpu(self, cores: int = 1) -> None:
        """Claim CPU shares; throttles (raises) past the limit."""
        with self._lock:
            if self._cpu_in_use + cores > self.cores:
                self.cpu_throttles += 1
                raise ResourceError(
                    f"cgroup CPU limit: {self._cpu_in_use}+{cores} > {self.cores}"
                )
            self._cpu_in_use += cores

    def release_cpu(self, cores: int = 1) -> None:
        with self._lock:
            if cores > self._cpu_in_use:
                raise ResourceError("releasing more CPU than is held")
            self._cpu_in_use -= cores

    def charge_memory(self, nbytes: int) -> None:
        """Account allocated memory; an overshoot is an OOM kill."""
        with self._lock:
            if self._memory_in_use + nbytes > self.memory_bytes:
                self.oom_kills += 1
                raise MemoryError(
                    f"cgroup memory limit: {self._memory_in_use}+{nbytes} "
                    f"> {self.memory_bytes}"
                )
            self._memory_in_use += nbytes

    def uncharge_memory(self, nbytes: int) -> None:
        with self._lock:
            self._memory_in_use = max(0, self._memory_in_use - nbytes)

    @property
    def cpu_in_use(self) -> int:
        with self._lock:
            return self._cpu_in_use

    @property
    def memory_in_use(self) -> int:
        with self._lock:
            return self._memory_in_use


@dataclass
class Container:
    """One granted resource allocation on one node."""

    node_index: int
    cores: int
    memory_bytes: int
    application_id: int
    container_id: int = field(default_factory=lambda: next(_CONTAINER_IDS))
    state: ContainerState = ContainerState.ALLOCATED
    cgroup: Cgroup = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cgroup is None:
            self.cgroup = Cgroup(self.cores, self.memory_bytes)

    def start(self) -> None:
        if self.state is not ContainerState.ALLOCATED:
            raise ResourceError(f"cannot start container in state {self.state}")
        self.state = ContainerState.RUNNING

    def release(self) -> None:
        self.state = ContainerState.RELEASED
