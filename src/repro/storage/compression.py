"""Block compression codecs for columnar storage.

Vertica compresses column blocks on disk; the paper's transfer-cost story
("the database first loads data from the local filesystem, deserializes and
decompresses data…") depends on this being real work, so blocks here are
genuinely compressed and decompressed.

Codecs are registered by name so tests and ablation benchmarks can switch
them per-table (``none``, ``zlib``, ``rle`` for integer runs).
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable

import numpy as np

from repro.errors import StorageError

__all__ = ["compress", "decompress", "available_codecs", "register_codec"]

_CompressFn = Callable[[bytes], bytes]
_DecompressFn = Callable[[bytes], bytes]

_CODECS: dict[str, tuple[_CompressFn, _DecompressFn]] = {}


def register_codec(name: str, compress_fn: _CompressFn, decompress_fn: _DecompressFn) -> None:
    """Register a codec under ``name`` (overwrites an existing entry)."""
    if not name or not name.islower():
        raise StorageError(f"codec names must be non-empty lowercase, got {name!r}")
    _CODECS[name] = (compress_fn, decompress_fn)


def available_codecs() -> list[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_CODECS)


def compress(data: bytes, codec: str) -> bytes:
    """Compress ``data`` with ``codec``."""
    try:
        compress_fn, _ = _CODECS[codec]
    except KeyError:
        raise StorageError(f"unknown compression codec: {codec!r}") from None
    return compress_fn(data)


def decompress(data: bytes, codec: str) -> bytes:
    """Invert :func:`compress`."""
    try:
        _, decompress_fn = _CODECS[codec]
    except KeyError:
        raise StorageError(f"unknown compression codec: {codec!r}") from None
    return decompress_fn(data)


def _rle_compress(data: bytes) -> bytes:
    """Run-length encode 8-byte words — effective on sorted/low-cardinality
    integer columns, which is the case Vertica's RLE targets."""
    if len(data) % 8 != 0:
        # Not word-aligned: store verbatim with a sentinel run count of -1.
        return struct.pack("<q", -1) + data
    words = np.frombuffer(data, dtype=np.int64)
    if words.size == 0:
        return struct.pack("<q", 0)
    change = np.flatnonzero(np.diff(words)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [words.size]))
    runs = np.empty((starts.size, 2), dtype=np.int64)
    runs[:, 0] = ends - starts       # run length
    runs[:, 1] = words[starts]       # run value
    return struct.pack("<q", starts.size) + runs.tobytes()


def _rle_decompress(data: bytes) -> bytes:
    if len(data) < 8:
        raise StorageError("RLE block too short for its header")
    (nruns,) = struct.unpack_from("<q", data, 0)
    body = data[8:]
    if nruns == -1:
        return body
    if nruns == 0:
        return b""
    runs = np.frombuffer(body, dtype=np.int64, count=nruns * 2).reshape(nruns, 2)
    lengths = runs[:, 0]
    if (lengths <= 0).any():
        raise StorageError("corrupt RLE block: non-positive run length")
    return np.repeat(runs[:, 1], lengths).tobytes()


register_codec("none", lambda data: data, lambda data: data)
register_codec(
    "zlib",
    lambda data: zlib.compress(data, level=1),
    zlib.decompress,
)
register_codec("rle", _rle_compress, _rle_decompress)
