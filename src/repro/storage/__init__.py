"""Columnar storage substrate: typed encodings, compressed blocks, row
groups, and on-disk segment files."""

from repro.storage.column import ColumnBlock
from repro.storage.compression import available_codecs, compress, decompress, register_codec
from repro.storage.encoding import ColumnSchema, SqlType
from repro.storage.files import SegmentFile, SegmentFileWriter
from repro.storage.rowgroup import RowGroup

__all__ = [
    "SqlType",
    "ColumnSchema",
    "ColumnBlock",
    "RowGroup",
    "SegmentFile",
    "SegmentFileWriter",
    "compress",
    "decompress",
    "register_codec",
    "available_codecs",
]
