"""Typed column encodings.

Vertica is a columnar store: table data lives on disk as per-column blocks.
This module maps the SQL type system used by the reproduction onto numpy
arrays and defines how each type is serialized to bytes.  Fixed-width types
round-trip through raw little-endian buffers; VARCHAR uses an offsets +
UTF-8 payload layout (the classic Arrow/Parquet string encoding).

Null handling: a column block carries an optional validity bitmap next to the
value buffer; encoding and decoding of the bitmap is shared across types.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError

__all__ = ["SqlType", "ColumnSchema", "encode_values", "decode_values",
           "pack_validity", "unpack_validity", "coerce_to_dtype"]


class SqlType(enum.Enum):
    """SQL column types supported by the reproduction's database."""

    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    VARCHAR = "varchar"

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]

    @property
    def fixed_width(self) -> int | None:
        """Bytes per value for fixed-width types, ``None`` for VARCHAR."""
        return _FIXED_WIDTHS[self]

    @classmethod
    def from_sql_name(cls, name: str) -> "SqlType":
        """Resolve a SQL type name (``INT``, ``DOUBLE PRECISION``, …)."""
        key = " ".join(name.strip().lower().split())
        try:
            return _SQL_NAME_ALIASES[key]
        except KeyError:
            raise StorageError(f"unknown SQL type: {name!r}") from None

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "SqlType":
        """Map a numpy dtype onto the closest SQL type."""
        dtype = np.dtype(dtype)
        if dtype.kind == "b":
            return cls.BOOLEAN
        if dtype.kind in "iu":
            return cls.INTEGER
        if dtype.kind == "f":
            return cls.FLOAT
        if dtype.kind in "UOS":
            return cls.VARCHAR
        raise StorageError(f"no SQL type for numpy dtype {dtype!r}")


_NUMPY_DTYPES = {
    SqlType.INTEGER: np.dtype(np.int64),
    SqlType.FLOAT: np.dtype(np.float64),
    SqlType.BOOLEAN: np.dtype(np.bool_),
    SqlType.VARCHAR: np.dtype(object),
}

_FIXED_WIDTHS = {
    SqlType.INTEGER: 8,
    SqlType.FLOAT: 8,
    SqlType.BOOLEAN: 1,
    SqlType.VARCHAR: None,
}

_SQL_NAME_ALIASES = {
    "int": SqlType.INTEGER,
    "integer": SqlType.INTEGER,
    "bigint": SqlType.INTEGER,
    "smallint": SqlType.INTEGER,
    "float": SqlType.FLOAT,
    "double": SqlType.FLOAT,
    "double precision": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "numeric": SqlType.FLOAT,
    "bool": SqlType.BOOLEAN,
    "boolean": SqlType.BOOLEAN,
    "varchar": SqlType.VARCHAR,
    "char": SqlType.VARCHAR,
    "text": SqlType.VARCHAR,
    "string": SqlType.VARCHAR,
}


@dataclass(frozen=True)
class ColumnSchema:
    """Name and type of one table column."""

    name: str
    sql_type: SqlType

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("column name must be non-empty")

    @property
    def numpy_dtype(self) -> np.dtype:
        return self.sql_type.numpy_dtype


def coerce_to_dtype(values: np.ndarray, sql_type: SqlType) -> np.ndarray:
    """Return ``values`` converted to the canonical dtype for ``sql_type``."""
    target = sql_type.numpy_dtype
    arr = np.asarray(values)
    if sql_type is SqlType.VARCHAR:
        if arr.dtype == object:
            return arr
        return arr.astype(object)
    try:
        return arr.astype(target, casting="same_kind", copy=False)
    except TypeError:
        # Fall back to an unsafe cast (e.g. int -> float widening).
        return arr.astype(target)


def encode_values(values: np.ndarray, sql_type: SqlType) -> bytes:
    """Serialize a 1-D value array (nulls already stripped/filled) to bytes."""
    arr = coerce_to_dtype(values, sql_type)
    if arr.ndim != 1:
        raise StorageError(f"column values must be 1-D, got shape {arr.shape}")
    if sql_type is SqlType.VARCHAR:
        return _encode_varchar(arr)
    return np.ascontiguousarray(arr).tobytes()


def decode_values(buffer: bytes, sql_type: SqlType, count: int) -> np.ndarray:
    """Inverse of :func:`encode_values`."""
    if sql_type is SqlType.VARCHAR:
        return _decode_varchar(buffer, count)
    width = sql_type.fixed_width
    expected = width * count
    if len(buffer) != expected:
        raise StorageError(
            f"column buffer has {len(buffer)} bytes, expected {expected} "
            f"for {count} values of {sql_type.value}"
        )
    arr = np.frombuffer(buffer, dtype=sql_type.numpy_dtype, count=count)
    return arr.copy()  # detach from the (possibly mmapped) buffer


def _encode_varchar(arr: np.ndarray) -> bytes:
    encoded = [("" if v is None else str(v)).encode("utf-8") for v in arr]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    for i, blob in enumerate(encoded):
        offsets[i + 1] = offsets[i] + len(blob)
    payload = b"".join(encoded)
    header = struct.pack("<q", len(encoded))
    return header + offsets.tobytes() + payload


def _decode_varchar(buffer: bytes, count: int) -> np.ndarray:
    if len(buffer) < 8:
        raise StorageError("varchar buffer too short for its header")
    (stored_count,) = struct.unpack_from("<q", buffer, 0)
    if stored_count != count:
        raise StorageError(
            f"varchar buffer holds {stored_count} values, expected {count}"
        )
    offsets_end = 8 + 8 * (count + 1)
    if len(buffer) < offsets_end:
        raise StorageError("varchar buffer truncated in offsets section")
    offsets = np.frombuffer(buffer, dtype=np.int64, count=count + 1, offset=8)
    payload = buffer[offsets_end:]
    if len(payload) != int(offsets[-1]):
        raise StorageError("varchar payload length mismatch")
    out = np.empty(count, dtype=object)
    for i in range(count):
        out[i] = payload[offsets[i]:offsets[i + 1]].decode("utf-8")
    return out


def pack_validity(mask: np.ndarray | None, count: int) -> bytes:
    """Pack a boolean validity mask (True = present) into a bitmap.

    Returns ``b""`` when every value is valid, which is the common case and
    keeps fully-dense blocks compact.
    """
    if mask is None:
        return b""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (count,):
        raise StorageError(f"validity mask shape {mask.shape} != ({count},)")
    if mask.all():
        return b""
    return np.packbits(mask).tobytes()


def unpack_validity(bitmap: bytes, count: int) -> np.ndarray | None:
    """Inverse of :func:`pack_validity`; ``None`` means all-valid."""
    if not bitmap:
        return None
    bits = np.unpackbits(np.frombuffer(bitmap, dtype=np.uint8), count=count)
    return bits.astype(bool)
