"""On-disk segment files.

Vertica is a *disk-based* columnar store, so segments here really live on
disk: a :class:`SegmentFile` serializes a sequence of row groups into a
single file with a footer index, and reads them back lazily.  The end-to-end
experiments (Fig 21) charge genuine file-system reads through this layer.

File layout::

    magic "RSEG1"
    repeated: [u32 block_index_entry_count][row group blocks ...]
    footer: json index (column order, per-rowgroup offsets) + footer length + magic
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError
from repro.storage.column import ColumnBlock
from repro.storage.encoding import ColumnSchema, SqlType
from repro.storage.rowgroup import RowGroup

__all__ = ["SegmentFile", "SegmentFileWriter"]

_MAGIC = b"RSEG1"
_FOOTER_MAGIC = b"RFTR1"


@dataclass
class _RowGroupEntry:
    offset: int
    row_count: int
    blocks: dict[str, tuple[int, int]]  # column -> (offset, length)


class SegmentFileWriter:
    """Streams row groups into a segment file, then finalizes the footer."""

    def __init__(self, path: str | os.PathLike, schema: list[ColumnSchema]) -> None:
        self.path = Path(path)
        self.schema = list(schema)
        self._entries: list[_RowGroupEntry] = []
        self._fh = open(self.path, "wb")
        self._fh.write(_MAGIC)
        self._closed = False

    def append(self, rowgroup: RowGroup) -> None:
        """Write one row group's blocks and record their offsets."""
        if self._closed:
            raise StorageError("writer already closed")
        rowgroup.validate()
        entry = _RowGroupEntry(
            offset=self._fh.tell(), row_count=rowgroup.row_count, blocks={}
        )
        for column in self.schema:
            block_bytes = rowgroup.block(column.name).to_bytes()
            entry.blocks[column.name] = (self._fh.tell(), len(block_bytes))
            self._fh.write(block_bytes)
        self._entries.append(entry)

    def close(self) -> None:
        """Write the footer index and close the file."""
        if self._closed:
            return
        footer = {
            "schema": [
                {"name": c.name, "type": c.sql_type.value} for c in self.schema
            ],
            "rowgroups": [
                {
                    "offset": e.offset,
                    "rows": e.row_count,
                    "blocks": {k: list(v) for k, v in e.blocks.items()},
                }
                for e in self._entries
            ],
        }
        footer_bytes = json.dumps(footer).encode("utf-8")
        self._fh.write(footer_bytes)
        self._fh.write(struct.pack("<q", len(footer_bytes)))
        self._fh.write(_FOOTER_MAGIC)
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "SegmentFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SegmentFile:
    """Read-side view of a segment file written by :class:`SegmentFileWriter`."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise StorageError(f"segment file does not exist: {self.path}")
        self.schema, self._entries = self._read_footer()

    def _read_footer(self) -> tuple[list[ColumnSchema], list[_RowGroupEntry]]:
        size = self.path.stat().st_size
        tail = len(_FOOTER_MAGIC) + 8
        if size < len(_MAGIC) + tail:
            raise StorageError(f"segment file too small: {self.path}")
        with open(self.path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                raise StorageError(f"bad segment magic in {self.path}")
            fh.seek(size - tail)
            footer_len_raw = fh.read(8)
            (footer_len,) = struct.unpack("<q", footer_len_raw)
            if fh.read(len(_FOOTER_MAGIC)) != _FOOTER_MAGIC:
                raise StorageError(f"bad footer magic in {self.path}")
            if footer_len <= 0 or footer_len > size:
                raise StorageError(f"corrupt footer length in {self.path}")
            fh.seek(size - tail - footer_len)
            footer = json.loads(fh.read(footer_len).decode("utf-8"))
        schema = [
            ColumnSchema(item["name"], SqlType(item["type"]))
            for item in footer["schema"]
        ]
        entries = [
            _RowGroupEntry(
                offset=item["offset"],
                row_count=item["rows"],
                blocks={k: (v[0], v[1]) for k, v in item["blocks"].items()},
            )
            for item in footer["rowgroups"]
        ]
        return schema, entries

    @property
    def rowgroup_count(self) -> int:
        return len(self._entries)

    @property
    def row_count(self) -> int:
        return sum(e.row_count for e in self._entries)

    @property
    def file_size(self) -> int:
        return self.path.stat().st_size

    def read_block(self, rowgroup_index: int, column: str) -> ColumnBlock:
        """Read one column block from disk."""
        try:
            entry = self._entries[rowgroup_index]
        except IndexError:
            raise StorageError(
                f"row group {rowgroup_index} out of range in {self.path}"
            ) from None
        try:
            offset, length = entry.blocks[column]
        except KeyError:
            raise StorageError(f"no column {column!r} in {self.path}") from None
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        if len(data) != length:
            raise StorageError(f"short read of block {column!r} in {self.path}")
        return ColumnBlock.from_bytes(data)

    def read_rowgroup(self, rowgroup_index: int, columns: list[str] | None = None) -> RowGroup:
        """Materialize one row group (optionally a column subset)."""
        names = columns if columns is not None else [c.name for c in self.schema]
        return RowGroup(
            columns={name: self.read_block(rowgroup_index, name) for name in names}
        )

    def iter_rowgroups(self, columns: list[str] | None = None) -> Iterator[RowGroup]:
        """Yield row groups in file order."""
        for index in range(self.rowgroup_count):
            yield self.read_rowgroup(index, columns)
