"""Row groups: horizontal slices of a table segment, stored column-wise.

A :class:`RowGroup` holds one :class:`~repro.storage.column.ColumnBlock` per
table column, all with the same row count.  Segments append row groups as
data is loaded; scans iterate row groups and decode only the referenced
columns — the essential columnar-store behaviour the paper's transfer and
prediction mechanisms exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.storage.column import ColumnBlock
from repro.storage.encoding import ColumnSchema

__all__ = ["RowGroup"]


@dataclass
class RowGroup:
    """One horizontal slice of a segment, as per-column blocks."""

    columns: dict[str, ColumnBlock] = field(default_factory=dict)

    @classmethod
    def from_arrays(
        cls,
        schema: list[ColumnSchema],
        arrays: dict[str, np.ndarray],
        codec: str = "zlib",
    ) -> "RowGroup":
        """Build a row group from per-column arrays matching ``schema``."""
        if not schema:
            raise StorageError("row group requires a non-empty schema")
        missing = [c.name for c in schema if c.name not in arrays]
        if missing:
            raise StorageError(f"missing arrays for columns: {missing}")
        lengths = {c.name: len(np.asarray(arrays[c.name])) for c in schema}
        if len(set(lengths.values())) != 1:
            raise StorageError(f"ragged column arrays: {lengths}")
        blocks = {
            c.name: ColumnBlock.from_values(arrays[c.name], c.sql_type, codec=codec)
            for c in schema
        }
        return cls(columns=blocks)

    @property
    def row_count(self) -> int:
        if not self.columns:
            return 0
        return next(iter(self.columns.values())).row_count

    @property
    def compressed_size(self) -> int:
        """Total on-disk bytes across all column blocks."""
        return sum(block.compressed_size for block in self.columns.values())

    def block(self, column: str) -> ColumnBlock:
        try:
            return self.columns[column]
        except KeyError:
            raise StorageError(f"row group has no column {column!r}") from None

    def read(self, columns: list[str] | None = None) -> dict[str, np.ndarray]:
        """Decode the requested columns (all columns when ``None``)."""
        names = list(self.columns) if columns is None else columns
        out = {}
        for name in names:
            out[name] = self.block(name).values()
        return out

    def might_match(self, ranges: dict, constrained: list[str] | None = None) -> bool:
        """Zone-map test: can any row satisfy the per-column envelopes?

        ``ranges`` maps column names to objects with ``low``/``high``
        attributes (:class:`~repro.vertica.pruning.ColumnRange`); columns
        absent from this row group contribute no constraint.  False means
        the whole row group can be skipped without decompressing a block.
        """
        names = constrained if constrained is not None else list(ranges)
        for name in names:
            block = self.columns.get(name)
            if block is None:
                continue
            envelope = ranges[name]
            if not block.might_contain(envelope.low, envelope.high):
                return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raises :class:`StorageError` if broken."""
        counts = {name: blk.row_count for name, blk in self.columns.items()}
        if counts and len(set(counts.values())) != 1:
            raise StorageError(f"row group column counts diverge: {counts}")
