"""Column blocks: the unit of columnar storage and of VFT streaming.

A :class:`ColumnBlock` is an encoded, compressed run of values from one
column, carrying enough metadata (row count, min/max zone map, checksum) for
scan pruning and corruption detection.  Blocks are what segment files store
and what Vertica Fast Transfer puts on the wire.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.storage import compression
from repro.storage.encoding import (
    SqlType,
    coerce_to_dtype,
    decode_values,
    encode_values,
    pack_validity,
    unpack_validity,
)

__all__ = ["ColumnBlock"]

_HEADER_FMT = "<4sB16sqqI"  # magic, type-code, codec (padded), rows, validity len, crc
_MAGIC = b"RCB1"
_TYPE_CODES = {t: i for i, t in enumerate(SqlType)}
_TYPE_FROM_CODE = {i: t for t, i in _TYPE_CODES.items()}


@dataclass
class ColumnBlock:
    """One compressed block of a single column."""

    sql_type: SqlType
    codec: str
    row_count: int
    payload: bytes          # compressed encoded values
    validity: bytes         # packed validity bitmap, b"" = all valid
    checksum: int           # crc32 of the *uncompressed* encoded values
    min_value: float | None = None
    max_value: float | None = None

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        sql_type: SqlType,
        codec: str = "zlib",
        validity: np.ndarray | None = None,
    ) -> "ColumnBlock":
        """Encode and compress ``values`` into a block."""
        arr = coerce_to_dtype(np.asarray(values), sql_type)
        if arr.ndim != 1:
            raise StorageError(f"column block values must be 1-D, got {arr.shape}")
        encoded = encode_values(arr, sql_type)
        payload = compression.compress(encoded, codec)
        min_value = max_value = None
        if sql_type in (SqlType.INTEGER, SqlType.FLOAT) and arr.size:
            if validity is None:
                live = arr
            else:
                live = arr[np.asarray(validity, dtype=bool)]
            if live.size:
                finite = live[np.isfinite(live.astype(np.float64))]
                if finite.size:
                    min_value = float(finite.min())
                    max_value = float(finite.max())
        return cls(
            sql_type=sql_type,
            codec=codec,
            row_count=int(arr.size),
            payload=payload,
            validity=pack_validity(validity, int(arr.size)),
            checksum=zlib.crc32(encoded),
            min_value=min_value,
            max_value=max_value,
        )

    def values(self) -> np.ndarray:
        """Decompress and decode the block back into a numpy array."""
        encoded = compression.decompress(self.payload, self.codec)
        if zlib.crc32(encoded) != self.checksum:
            raise StorageError("column block checksum mismatch: corrupt payload")
        return decode_values(encoded, self.sql_type, self.row_count)

    def validity_mask(self) -> np.ndarray | None:
        """Boolean present-mask, or ``None`` when every row is valid."""
        return unpack_validity(self.validity, self.row_count)

    @property
    def compressed_size(self) -> int:
        """Bytes this block occupies on disk / on the wire."""
        return len(self.payload) + len(self.validity) + struct.calcsize(_HEADER_FMT)

    def might_contain(self, low: float | None, high: float | None) -> bool:
        """Zone-map pruning: can any value fall inside ``[low, high]``?"""
        if self.min_value is None or self.max_value is None:
            return True
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    def to_bytes(self) -> bytes:
        """Serialize the block (header + bitmap + payload) for disk or wire."""
        codec_bytes = self.codec.encode("ascii")
        if len(codec_bytes) > 16:
            raise StorageError(f"codec name too long to serialize: {self.codec!r}")
        header = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            _TYPE_CODES[self.sql_type],
            codec_bytes.ljust(16, b"\0"),
            self.row_count,
            len(self.validity),
            self.checksum,
        )
        zone = struct.pack(
            "<Bdd",
            1 if self.min_value is not None else 0,
            self.min_value if self.min_value is not None else 0.0,
            self.max_value if self.max_value is not None else 0.0,
        )
        return header + zone + self.validity + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnBlock":
        """Inverse of :meth:`to_bytes`."""
        header_size = struct.calcsize(_HEADER_FMT)
        if len(data) < header_size:
            raise StorageError("column block truncated in header")
        magic, type_code, codec_raw, rows, validity_len, checksum = struct.unpack_from(
            _HEADER_FMT, data, 0
        )
        if magic != _MAGIC:
            raise StorageError(f"bad column block magic: {magic!r}")
        try:
            sql_type = _TYPE_FROM_CODE[type_code]
        except KeyError:
            raise StorageError(f"unknown column type code: {type_code}") from None
        zone_size = struct.calcsize("<Bdd")
        has_zone, zmin, zmax = struct.unpack_from("<Bdd", data, header_size)
        offset = header_size + zone_size
        validity = bytes(data[offset:offset + validity_len])
        if len(validity) != validity_len:
            raise StorageError("column block truncated in validity bitmap")
        payload = bytes(data[offset + validity_len:])
        return cls(
            sql_type=sql_type,
            codec=codec_raw.rstrip(b"\0").decode("ascii"),
            row_count=rows,
            payload=payload,
            validity=validity,
            checksum=checksum,
            min_value=zmin if has_zone else None,
            max_value=zmax if has_zone else None,
        )
