"""repro: a reproduction of "Large-scale Predictive Analytics in Vertica:
Fast Data Transfer, Distributed Model Creation, and In-database Prediction"
(Prasad et al., SIGMOD 2015).

The public API mirrors the paper's workflow (Figure 3)::

    from repro import (VerticaCluster, start_session, db2darray_with_response,
                       hpdglm, deploy_model)

    cluster = VerticaCluster(node_count=4)
    ...                                     # ETL into the database
    session = start_session(node_count=4)   # distributedR_start()
    y, x = db2darray_with_response(cluster, "mytable", "y", ["a", "b"], session)
    model = hpdglm(y, x, family="binomial")  # distributed Newton-Raphson
    deploy_model(cluster, model, "rModel")   # deploy.model(...)
    cluster.sql("SELECT glmPredict(a, b USING PARAMETERS model='rModel') "
                "OVER (PARTITION BEST) FROM mytable2")

Subpackages: :mod:`repro.vertica` (the MPP columnar database),
:mod:`repro.dr` (the Distributed R engine), :mod:`repro.transfer` (VFT and
the ODBC baselines), :mod:`repro.algorithms` (distributed ML),
:mod:`repro.deploy` (model deployment), :mod:`repro.yarn` (resource
management), :mod:`repro.spark` / :mod:`repro.rbase` (comparators),
:mod:`repro.perfmodel` (paper-scale performance replay), and
:mod:`repro.workloads` / :mod:`repro.harness` (experiments).
"""

from repro.algorithms import (
    cv_hpdglm,
    hpdglm,
    hpdkmeans,
    hpdpagerank,
    hpdrandomforest,
)
from repro.deploy import deploy_model, load_model
from repro.dr import DRSession, clone, partitionsize, start_session
from repro.errors import ReproError
from repro.transfer import (
    db2darray,
    db2darray_with_response,
    db2dframe,
    load_via_parallel_odbc,
    load_via_single_odbc,
)
from repro.vertica import VerticaCluster

__version__ = "1.0.0"

__all__ = [
    "VerticaCluster",
    "DRSession",
    "start_session",
    "db2darray",
    "db2dframe",
    "db2darray_with_response",
    "load_via_single_odbc",
    "load_via_parallel_odbc",
    "hpdglm",
    "cv_hpdglm",
    "hpdkmeans",
    "hpdrandomforest",
    "hpdpagerank",
    "deploy_model",
    "load_model",
    "clone",
    "partitionsize",
    "ReproError",
    "__version__",
]
