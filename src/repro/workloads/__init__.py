"""Synthetic workload generators matching the paper's methodology (§7)."""

from repro.workloads.clusters import ClusterDataset, make_blobs
from repro.workloads.regression import (
    RegressionDataset,
    make_classification,
    make_regression,
)
from repro.workloads.tables import (
    load_cluster_table,
    load_regression_table,
    make_prediction_table,
)

__all__ = [
    "make_regression",
    "make_classification",
    "RegressionDataset",
    "make_blobs",
    "ClusterDataset",
    "load_regression_table",
    "load_cluster_table",
    "make_prediction_table",
]
