"""Loading synthetic workloads into database tables.

The prediction experiments (Figs 15–16) "populate tables with six columns
and up to a billion rows"; :func:`make_prediction_table` builds the
scaled-down analog, and the other helpers wire the generators into tables
with a chosen segmentation.
"""

from __future__ import annotations

import numpy as np

from repro.vertica.cluster import VerticaCluster
from repro.vertica.segmentation import HashSegmentation, SegmentationScheme
from repro.workloads.clusters import ClusterDataset
from repro.workloads.regression import RegressionDataset

__all__ = [
    "load_regression_table",
    "load_cluster_table",
    "make_prediction_table",
]


def load_regression_table(
    cluster: VerticaCluster,
    table_name: str,
    dataset: RegressionDataset,
    segmentation: SegmentationScheme | None = None,
    key_column: bool = True,
    seed: int = 0,
) -> list[str]:
    """Create and load a table from a regression dataset.

    Returns the feature column names.  With ``key_column=True`` a random
    integer key is added and used for hash segmentation (matching the
    enterprise ETL pattern of §2).
    """
    columns = dataset.as_table_columns()
    if key_column:
        rng = np.random.default_rng(seed)
        columns = {"k": rng.integers(0, 2**31, size=dataset.n_rows), **columns}
        segmentation = segmentation or HashSegmentation("k")
    cluster.create_table_like(table_name, columns, segmentation)
    cluster.bulk_load(table_name, columns)
    return dataset.feature_names()


def load_cluster_table(
    cluster: VerticaCluster,
    table_name: str,
    dataset: ClusterDataset,
    segmentation: SegmentationScheme | None = None,
    key_column: bool = True,
    seed: int = 0,
) -> list[str]:
    """Create and load a table from a clustering dataset."""
    columns = dataset.as_table_columns()
    if key_column:
        rng = np.random.default_rng(seed)
        columns = {"k": rng.integers(0, 2**31, size=dataset.n_rows), **columns}
        segmentation = segmentation or HashSegmentation("k")
    cluster.create_table_like(table_name, columns, segmentation)
    cluster.bulk_load(table_name, columns)
    return dataset.feature_names()


def make_prediction_table(
    cluster: VerticaCluster,
    table_name: str,
    n_rows: int,
    n_features: int = 6,
    seed: int = 0,
) -> list[str]:
    """The Figs 15/16 scoring table: ``n_features`` numeric columns."""
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 2**31, size=n_rows),
        **{f"c{j}": rng.normal(size=n_rows) for j in range(n_features)},
    }
    cluster.create_table_like(table_name, columns, HashSegmentation("k"))
    cluster.bulk_load(table_name, columns)
    return [f"c{j}" for j in range(n_features)]
