"""Synthetic clustering workloads (the K-means experiments of §7).

The paper clusters "1 million points, each with 100 features" into K=1000
groups; :func:`make_blobs` generates the scaled-down analog: Gaussian blobs
around known centers so assignments can be validated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["ClusterDataset", "make_blobs"]


@dataclass
class ClusterDataset:
    """Points, their true labels, and the generating centers."""

    points: np.ndarray        # (n, d)
    labels: np.ndarray        # (n,)
    centers: np.ndarray       # (k, d)
    spread: float

    @property
    def n_rows(self) -> int:
        return len(self.points)

    @property
    def n_features(self) -> int:
        return self.points.shape[1]

    @property
    def k(self) -> int:
        return len(self.centers)

    def as_table_columns(self, feature_prefix: str = "f") -> dict[str, np.ndarray]:
        """Column dict ready for ``VerticaCluster.bulk_load``."""
        return {
            f"{feature_prefix}{j}": self.points[:, j]
            for j in range(self.n_features)
        }

    def feature_names(self, feature_prefix: str = "f") -> list[str]:
        return [f"{feature_prefix}{j}" for j in range(self.n_features)]


def make_blobs(
    n_rows: int,
    n_features: int,
    k: int,
    spread: float = 0.3,
    center_box: float = 10.0,
    seed: int = 0,
) -> ClusterDataset:
    """Gaussian blobs around ``k`` uniformly-placed centers."""
    if n_rows < k:
        raise ModelError(f"need at least {k} rows for {k} clusters")
    if n_features < 1 or k < 1:
        raise ModelError("dimensions must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_box, center_box, size=(k, n_features))
    labels = rng.integers(0, k, size=n_rows)
    points = centers[labels] + rng.normal(scale=spread, size=(n_rows, n_features))
    return ClusterDataset(points=points, labels=labels, centers=centers, spread=spread)
