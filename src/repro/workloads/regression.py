"""Synthetic regression workloads (paper §7.3.1 methodology).

"we synthetically generated datasets by creating vectors around coefficients
that we expect to fit the data. This methodology ensures that we can check
for accuracy of the answers by Distributed R."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["RegressionDataset", "make_regression", "make_classification"]


@dataclass
class RegressionDataset:
    """Features, responses, and the ground-truth coefficients."""

    features: np.ndarray          # (n, p)
    responses: np.ndarray         # (n,)
    true_coefficients: np.ndarray  # (p,)
    true_intercept: float
    noise_scale: float

    @property
    def n_rows(self) -> int:
        return len(self.features)

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def as_table_columns(self, response_name: str = "y",
                         feature_prefix: str = "x") -> dict[str, np.ndarray]:
        """Column dict ready for ``VerticaCluster.bulk_load``."""
        columns = {response_name: self.responses}
        for j in range(self.n_features):
            columns[f"{feature_prefix}{j}"] = self.features[:, j]
        return columns

    def feature_names(self, feature_prefix: str = "x") -> list[str]:
        return [f"{feature_prefix}{j}" for j in range(self.n_features)]


def make_regression(
    n_rows: int,
    n_features: int,
    noise_scale: float = 0.1,
    intercept: float = 1.0,
    coefficients: np.ndarray | None = None,
    seed: int = 0,
) -> RegressionDataset:
    """Gaussian features around known coefficients: ``y = a + Xb + e``."""
    if n_rows < 1 or n_features < 1:
        raise ModelError("dataset dimensions must be positive")
    rng = np.random.default_rng(seed)
    if coefficients is None:
        coefficients = rng.uniform(-2.0, 2.0, size=n_features)
    else:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape != (n_features,):
            raise ModelError(
                f"coefficients must have shape ({n_features},), got "
                f"{coefficients.shape}"
            )
    features = rng.normal(size=(n_rows, n_features))
    noise = rng.normal(scale=noise_scale, size=n_rows) if noise_scale > 0 else 0.0
    responses = intercept + features @ coefficients + noise
    return RegressionDataset(
        features=features,
        responses=responses,
        true_coefficients=coefficients,
        true_intercept=intercept,
        noise_scale=noise_scale,
    )


def make_classification(
    n_rows: int,
    n_features: int,
    intercept: float = 0.0,
    coefficients: np.ndarray | None = None,
    seed: int = 0,
) -> RegressionDataset:
    """Logistic-model labels around known coefficients (for ``hpdglm``
    with ``family="binomial"``); responses are 0/1."""
    base = make_regression(
        n_rows, n_features, noise_scale=0.0, intercept=intercept,
        coefficients=coefficients, seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    logits = base.responses
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.random(n_rows) < probabilities).astype(np.int64)
    return RegressionDataset(
        features=base.features,
        responses=labels,
        true_coefficients=base.true_coefficients,
        true_intercept=intercept,
        noise_scale=0.0,
    )
