"""Exporters: chrome-trace events and JSON snapshots for the harness.

Two consumers:

* ``about:tracing`` / Perfetto — :func:`chrome_trace_events` flattens span
  trees into complete ("ph": "X") events with microsecond timestamps, one
  track per OS thread, so a streaming query's producer/consumer overlap is
  visible on a timeline.
* the benchmarks harness — :func:`write_trace_artifact` bundles span trees
  (as nested JSON) plus a metrics snapshot into one file per benchmark,
  wired up by an autouse fixture in ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .trace import Span

__all__ = [
    "chrome_trace_events",
    "span_to_dict",
    "write_trace_artifact",
]


def chrome_trace_events(roots: Iterable[Span],
                        pid: int = 1) -> list[dict[str, Any]]:
    """Flatten span trees into chrome-trace complete events.

    Timestamps are microseconds relative to the earliest span start across
    ``roots`` (chrome-trace wants small positive numbers, not epoch-scale
    ``perf_counter`` values). ``tid`` is the OS thread that opened the span,
    so pool fan-outs render as parallel tracks.
    """
    spans = [span for root in roots for span in root.walk()]
    if not spans:
        return []
    origin = min(span.start for span in spans)
    events: list[dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.attributes)
        if span.error is not None:
            args["error"] = span.error
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round((end - span.start) * 1e6, 3),
            "pid": pid,
            "tid": span.thread_id,
            "args": args,
        })
    return events


def span_to_dict(span: Span) -> dict[str, Any]:
    """One span tree as nested JSON-serialisable dicts."""
    out: dict[str, Any] = {
        "name": span.name,
        "span_id": span.span_id,
        "duration_s": span.duration,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in list(span.children)],
    }
    if span.error is not None:
        out["error"] = span.error
    return out


def write_trace_artifact(
    path: str | Path,
    roots: Iterable[Span],
    registries: Iterable[MetricsRegistry] = (),
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write one JSON artifact: chrome-trace events + span trees + metrics.

    The file doubles as a chrome-trace load target: ``about:tracing`` and
    Perfetto read the top-level ``traceEvents`` key and ignore the rest.
    """
    roots = list(roots)
    payload: dict[str, Any] = {
        "traceEvents": chrome_trace_events(roots),
        "spans": [span_to_dict(root) for root in roots],
        "metrics": [registry.snapshot() for registry in registries],
    }
    if meta:
        payload["meta"] = meta
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path
