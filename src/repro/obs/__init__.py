"""Observability: typed metrics, hierarchical span tracing, exporters.

- :mod:`repro.obs.metrics` — declared Counter/Gauge/Histogram instruments
  behind a :class:`MetricsRegistry`; the catalog in that module is the
  single source of truth for every metric name (drift-checked against
  ``docs/metrics_reference.md``).
- :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` with ambient
  context propagation from SQL statement down to UDTF instances and DR
  tasks; powers the ``PROFILE SELECT`` verb.
- :mod:`repro.obs.export` — chrome-trace and JSON snapshot exporters used
  by the benchmarks harness.

See ``docs/observability.md`` for the end-to-end walkthrough.
"""

from .metrics import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    InstrumentSpec,
    MetricsRegistry,
    all_registries,
    catalog_markdown_table,
    declared_instruments,
)
from .trace import (
    Span,
    Tracer,
    add_to_current,
    all_tracers,
    current_span,
    max_to_current,
)
from .export import chrome_trace_events, span_to_dict, write_trace_artifact

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSpec",
    "MetricsRegistry",
    "all_registries",
    "catalog_markdown_table",
    "declared_instruments",
    "Span",
    "Tracer",
    "add_to_current",
    "all_tracers",
    "current_span",
    "max_to_current",
    "chrome_trace_events",
    "span_to_dict",
    "write_trace_artifact",
]
