"""Hierarchical span tracer with ambient context propagation.

A :class:`Span` is one timed unit of work — a SQL statement, one operator,
one scan source, one UDTF instance, one VFT stream, one DR ``foreach``
task — with numeric attributes (rows, bytes, peaks) and child spans. A
:class:`Tracer` records the roots; :func:`current_span` exposes the ambient
span so deeply nested code (a UDTF running three layers under the executor)
can annotate the active span without threading it through every signature.

Propagation rules:

* Within a thread, ``tracer.span(...)`` nests under the ambient span
  automatically (a :mod:`contextvars` variable).
* Across threads, contextvars do **not** flow into pool workers — callers
  capture ``tracer.current()`` *before* submitting and pass it as
  ``parent=``. Every pool fan-out in the executor/DR session does this.
* Across engines (the cluster's tracer vs a DR session's), children attach
  to the parent *span object* regardless of which tracer opened it, so a
  VFT transfer shows as one connected tree.

Spans are cheap (one ``perf_counter`` pair + dict) and always on; the
tracer keeps a bounded deque of recent root spans so a long-lived cluster
cannot grow without bound.
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import itertools
import threading
import time
import weakref
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "current_span", "add_to_current",
           "max_to_current", "all_tracers", "SPAN_TAXONOMY"]

#: Every span name the engines open, with its meaning.  This is the span
#: taxonomy documented in ``docs/observability.md``; the ``registry-drift``
#: reprolint rule (RL903) holds every ``tracer.span("...")`` literal in the
#: source tree to this set, so a renamed or ad-hoc span name fails lint
#: instead of silently fragmenting traces.
SPAN_TAXONOMY: dict[str, str] = {
    "query": "one SQL statement, opened by VerticaCluster.sql",
    "scan": "scan-shaped SELECT (executor operator root)",
    "aggregate": "two-phase aggregate SELECT (executor operator root)",
    "join": "hash-join SELECT (executor operator root)",
    "udtf": "transform-function SELECT (executor operator root)",
    "scan.node": "one node's scan of its segment (eager or streaming)",
    "aggregate.node": "one node's partial-aggregate fold",
    "udtf.producer": "streaming UDTF scan side, one per node",
    "udtf.instance": "one transform-function instance",
    "vft.transfer": "one VFT transfer (db2darray / db2dframe)",
    "vft.finalize": "VFT assembly of received chunks into the dobject",
    "txn.moveout": "one Tuple Mover moveout pass over a segment's WOS",
    "txn.mergeout": "one Tuple Mover mergeout pass over a segment's ROS",
    "dr.task": "one Distributed R foreach task",
    "yarn.allocate": "DR session container allocation",
    "yarn.release": "DR session container release",
    "fault.injected": "a FaultPlan spec fired at an injection site",
    "fault.recovered": "a recovery layer absorbed an injected fault",
    "ml.fold": "one solver run through the unified fold_fit/sgd_fit driver",
    "ml.fold.step": "one synchronized partition-fold iteration (fold_fit)",
    "ml.sgd.epoch": "one shuffle-once mini-batch SGD sweep (sgd_fit)",
    "serve.session": "a serving session's lifetime, opened by Server.session",
    "serve.admit": "admission control: queueing for a pool execution slot",
    "serve.execute": "one admitted statement running on a pool worker",
    "aqp.build": "CREATE SAMPLE materialization (scan, draw, insert)",
    "aqp.rewrite": "WITHIN-query sample selection and estimation",
    "aqp.refresh": "one sample refresh pass (fold, rebuild, or noop)",
}

_span_ids = itertools.count(1)

#: Ambient active span for the current (thread, context).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Every live tracer, for harness-level export (weak: GC'd with its owner).
_TRACERS: "weakref.WeakSet[Tracer]" = weakref.WeakSet()


class Span:
    """One timed unit of work with numeric attributes and children."""

    def __init__(self, name: str, parent: "Span | None" = None,
                 attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.span_id = next(_span_ids)
        self.parent = parent
        self.children: list[Span] = []
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        self.end: float | None = None
        self.error: str | None = None
        self._lock = threading.Lock()
        if parent is not None:
            parent._attach_child(self)

    def _attach_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    # -- attribute updates (all safe from concurrent child threads) ----------

    def add(self, **attrs: float) -> None:
        """Accumulate numeric attributes (``span.add(rows=3)`` sums)."""
        with self._lock:
            for key, value in attrs.items():
                self.attributes[key] = self.attributes.get(key, 0) + value

    def set(self, **attrs: Any) -> None:
        """Overwrite attributes."""
        with self._lock:
            self.attributes.update(attrs)

    def max(self, **attrs: float) -> None:
        """Watermark attributes (keep the maximum ever recorded)."""
        with self._lock:
            for key, value in attrs.items():
                prev = self.attributes.get(key)
                if prev is None or value > prev:
                    self.attributes[key] = value

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    @property
    def duration(self) -> float:
        """Seconds; uses *now* while the span is still open."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        with self._lock:
            children = list(self.children)
        for child in children:
            yield from child.walk()

    def total(self, key: str) -> float:
        """Sum of a numeric attribute over this span and all descendants."""
        acc = 0.0
        for span in self.walk():
            value = span.attributes.get(key)
            if isinstance(value, (int, float)):
                acc += value
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"children={len(self.children)}, attrs={self.attributes})")


class Tracer:
    """Records root spans; each engine (cluster, DR session) owns one."""

    def __init__(self, max_roots: int = 256) -> None:
        self._lock = threading.Lock()
        self._roots: collections.deque[Span] = collections.deque(
            maxlen=max_roots)
        _TRACERS.add(self)

    def current(self) -> Span | None:
        """The ambient span for this thread/context (tracer-independent)."""
        return _CURRENT.get()

    @contextlib.contextmanager
    def span(self, name: str, parent: Span | None = None, root: bool = False,
             **attrs: Any) -> Iterator[Span]:
        """Open a span, make it ambient for the body, close it on exit.

        Nests under the ambient span unless ``parent=`` is given (use for
        cross-thread propagation) or ``root=True`` forces a detached tree.
        Parentless spans are recorded as roots of this tracer.
        """
        if parent is None and not root:
            parent = _CURRENT.get()
        span = Span(name, parent=parent, attributes=attrs)
        if parent is None:
            with self._lock:
                self._roots.append(span)
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT.reset(token)
            span.finish()

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Span | None:
        with self._lock:
            return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()


def current_span() -> Span | None:
    """The ambient span, or None when no span is active."""
    return _CURRENT.get()


def add_to_current(**attrs: float) -> None:
    """Accumulate attributes on the ambient span; no-op when none is active.

    This is the hook deeply nested code uses (VFT frame sender, prediction
    UDTFs) — it costs one contextvar read when tracing has no active span.
    """
    span = _CURRENT.get()
    if span is not None:
        span.add(**attrs)


def max_to_current(**attrs: float) -> None:
    """Watermark attributes on the ambient span; no-op when none is active."""
    span = _CURRENT.get()
    if span is not None:
        span.max(**attrs)


def all_tracers() -> list[Tracer]:
    """Every live tracer (for harness-level trace export)."""
    return list(_TRACERS)
