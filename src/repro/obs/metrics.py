"""Typed metrics registry: every metric is declared once, with a unit.

The flat string-keyed counter dict that :class:`~repro.vertica.telemetry
.Telemetry` grew up as made two failure modes invisible: a typo silently
creates a new counter, and nobody can enumerate what the system measures.
This module replaces it with *declared instruments*:

* :class:`Counter` — a monotonically increasing total (``rows_scanned``).
* :class:`Gauge` — a level that goes up and down, clamped at zero, with a
  high-water mark (``pipeline_inflight_bytes``); *watermark* gauges only
  track the maximum ever observed (``peak_batch_bytes``).
* :class:`Histogram` — a value distribution summarised as
  count/sum/min/max (``query_seconds``).

The static :data:`CATALOG` below is the single source of truth for every
instrument the engines emit — name, kind, unit, description, and the module
that emits it.  ``docs/metrics_reference.md`` renders this catalog and
``tests/test_docs_drift.py`` fails when the two diverge.  Undeclared names
are still accepted (tests and user code invent ad-hoc counters); they are
registered as *dynamic* instruments and excluded from the documented
catalog.

Thread safety: the registry guards its instrument table with one lock and
each instrument guards its own state with another; registry locks are never
held while an instrument lock is taken, so there is no ordering hazard.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

__all__ = [
    "InstrumentSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "all_registries",
    "declared_instruments",
    "catalog_markdown_table",
    "CATALOG",
]

#: Weak set of every live registry, for exporters that want a cluster-wide
#: snapshot (e.g. the benchmark trace artifacts) without threading a handle
#: through every engine.
_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def all_registries() -> list["MetricsRegistry"]:
    """Every registry still alive, in no particular order."""
    return list(_REGISTRIES)


@dataclass(frozen=True)
class InstrumentSpec:
    """The declaration of one instrument."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str  # "rows", "bytes", "seconds", "frames", "1" (dimensionless)
    description: str
    module: str  # the module that emits it
    watermark: bool = False  # gauges only: high-water mark, no level

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown instrument kind {self.kind!r}")
        if self.watermark and self.kind != "gauge":
            raise ValueError("watermark=True is only meaningful for gauges")


def _spec(name: str, kind: str, unit: str, description: str, module: str,
          watermark: bool = False) -> InstrumentSpec:
    return InstrumentSpec(name, kind, unit, description, module, watermark)


#: Every instrument the engines emit, declared exactly once.  Keep sorted by
#: module, then name; ``docs/metrics_reference.md`` mirrors this table and a
#: drift test holds the two equal.
CATALOG: dict[str, InstrumentSpec] = {
    spec.name: spec
    for spec in [
        # -- repro.vertica.cluster / table scans -------------------------------
        _spec("rows_loaded", "counter", "rows",
              "Rows inserted through bulk_load / INSERT / COPY.",
              "repro.vertica.cluster"),
        _spec("queries_executed", "counter", "1",
              "SQL statements executed through VerticaCluster.sql.",
              "repro.vertica.cluster"),
        _spec("rows_scanned", "counter", "rows",
              "Rows decoded from segment row groups by table scans.",
              "repro.vertica.cluster"),
        _spec("bytes_scanned", "counter", "bytes",
              "Decoded (in-memory) bytes produced by table scans.",
              "repro.vertica.cluster"),
        _spec("batches_scanned", "counter", "1",
              "Batches emitted by scan sources (eager: one per node).",
              "repro.vertica.cluster"),
        _spec("rows_streamed", "counter", "rows",
              "Rows delivered through the streaming scan sources.",
              "repro.vertica.cluster"),
        _spec("rowgroups_pruned", "counter", "1",
              "Row groups skipped by zone-map range pushdown.",
              "repro.vertica.cluster"),
        _spec("buddy_scans", "counter", "1",
              "Segment scans served by a buddy replica after node failure.",
              "repro.vertica.cluster"),
        _spec("failovers", "counter", "1",
              "Scans/streams failed over to a buddy replica (incl. mid-stream).",
              "repro.vertica.cluster"),
        _spec("peak_batch_bytes", "gauge", "bytes",
              "Largest single scan batch observed (high-water mark).",
              "repro.vertica.cluster", watermark=True),
        _spec("query_seconds", "histogram", "seconds",
              "Wall time of each SQL statement (parse + execute).",
              "repro.vertica.cluster"),
        # -- repro.vertica.pipeline / executor ---------------------------------
        _spec("pipeline_inflight_bytes", "gauge", "bytes",
              "Bytes of scan batches produced but not yet consumed.",
              "repro.vertica.pipeline"),
        _spec("pipeline_inflight_batches", "gauge", "1",
              "Scan batches produced but not yet consumed.",
              "repro.vertica.pipeline"),
        _spec("pipeline_backpressure_seconds", "counter", "seconds",
              "Total time producers spent blocked on full batch queues.",
              "repro.vertica.pipeline"),
        _spec("udtf_instances", "counter", "1",
              "Transform-function instances fanned out by the executor.",
              "repro.vertica.executor"),
        _spec("shuffle_bytes", "counter", "bytes",
              "Bytes moved across nodes by PARTITION BY hash shuffles.",
              "repro.vertica.executor"),
        _spec("join_rows_scanned", "counter", "rows",
              "Rows read from both sides of a hash join.",
              "repro.vertica.joins"),
        _spec("join_rows_produced", "counter", "rows",
              "Rows emitted by hash joins.",
              "repro.vertica.joins"),
        # -- repro.vertica.txn / MVCC ------------------------------------------
        _spec("wos_rows", "gauge", "rows",
              "Rows resident in write-optimized (WOS) buffers, pre-moveout.",
              "repro.vertica.table"),
        _spec("delete_vector_rows", "gauge", "rows",
              "Live delete-vector entries not yet purged by mergeout.",
              "repro.vertica.txn.mutations"),
        _spec("rows_deleted", "counter", "rows",
              "Rows marked deleted by SQL DELETE statements.",
              "repro.vertica.txn.mutations"),
        _spec("rows_updated", "counter", "rows",
              "Rows rewritten (delete + reinsert) by SQL UPDATE statements.",
              "repro.vertica.txn.mutations"),
        _spec("mergeout_bytes_rewritten", "counter", "bytes",
              "Encoded bytes rewritten by Tuple Mover mergeout passes.",
              "repro.vertica.txn.mover"),
        _spec("mover_restarts", "counter", "1",
              "Tuple Mover passes completed after an earlier crashed pass.",
              "repro.vertica.txn.mover"),
        _spec("dfs_read_repairs", "counter", "1",
              "DFS reads that healed lost or corrupt replicas (read-repair).",
              "repro.vertica.dfs"),
        _spec("current_epoch", "gauge", "1",
              "Committed epoch watermark of the cluster's epoch clock.",
              "repro.vertica.txn.epochs"),
        # -- repro.vertica.odbc ------------------------------------------------
        _spec("odbc_connections_opened", "counter", "1",
              "ODBC-style client connections opened.",
              "repro.vertica.odbc"),
        _spec("odbc_bytes", "counter", "bytes",
              "Wire bytes shipped to ODBC clients.",
              "repro.vertica.odbc"),
        _spec("odbc_rows", "counter", "rows",
              "Rows shipped to ODBC clients.",
              "repro.vertica.odbc"),
        # -- repro.transfer ----------------------------------------------------
        _spec("odbc_loads", "counter", "1",
              "ODBC loader invocations (single or parallel).",
              "repro.transfer.odbc_loader"),
        _spec("odbc_parallel_connections", "counter", "1",
              "Connections opened by the parallel ODBC loader.",
              "repro.transfer.odbc_loader"),
        _spec("vft_bytes_sent", "counter", "bytes",
              "Encoded VFT frame bytes sent by ExportToDistributedR.",
              "repro.transfer.vft"),
        _spec("vft_rows_sent", "counter", "rows",
              "Rows streamed out by ExportToDistributedR instances.",
              "repro.transfer.vft"),
        _spec("vft_bytes_received", "counter", "bytes",
              "VFT frame bytes staged into worker shm buffers.",
              "repro.transfer.vft"),
        _spec("vft_rows_received", "counter", "rows",
              "Rows received by VFT transfer targets.",
              "repro.transfer.vft"),
        _spec("vft_frames_received", "counter", "frames",
              "Wire frames received by VFT transfer targets.",
              "repro.transfer.vft"),
        _spec("vft_frame_bytes", "histogram", "bytes",
              "Size distribution of individual VFT wire frames.",
              "repro.transfer.vft"),
        _spec("transfer_retries", "counter", "1",
              "VFT retries: frame resends plus whole-transfer re-attempts.",
              "repro.transfer.vft"),
        _spec("vft_frames_deduped", "counter", "frames",
              "Duplicate VFT frames skipped by resend-from-last-acked dedup.",
              "repro.transfer.vft"),
        _spec("vft_db_seconds", "counter", "seconds",
              "Database half of VFT loads (scan/encode/stream).",
              "repro.transfer.db2darray"),
        _spec("vft_r_seconds", "counter", "seconds",
              "R half of VFT loads (parse staged bytes, build darray).",
              "repro.transfer.db2darray"),
        # -- repro.dr ----------------------------------------------------------
        _spec("dr_tasks", "counter", "1",
              "foreach partition tasks dispatched to the instance pool.",
              "repro.dr.session"),
        _spec("dr_remote_partition_fetches", "counter", "1",
              "Partition reads served from a non-local worker.",
              "repro.dr.dobject"),
        _spec("dr_remote_bytes", "counter", "bytes",
              "Bytes moved by remote partition fetches.",
              "repro.dr.dobject"),
        _spec("dr_repartition_bytes", "counter", "bytes",
              "Bytes moved between workers by repartition().",
              "repro.dr.darray"),
        _spec("tasks_reexecuted", "counter", "1",
              "DR tasks re-executed on a surviving worker after a failure.",
              "repro.dr.session"),
        _spec("dr_worker_failures", "counter", "1",
              "DR workers marked dead (injected or organic).",
              "repro.dr.worker"),
        # -- repro.faults ------------------------------------------------------
        _spec("faults_injected", "counter", "1",
              "Faults fired by an armed FaultPlan (all kinds).",
              "repro.faults.plan"),
        # -- repro.deploy ------------------------------------------------------
        _spec("models_deployed", "counter", "1",
              "Models serialized into DFS + R_Models by deploy_model.",
              "repro.deploy.deploy"),
        _spec("model_staleness_epochs", "gauge", "1",
              "Epochs the last refreshed model lagged its table "
              "(peak = worst staleness any REFRESH MODEL observed).",
              "repro.deploy.refresh"),
        _spec("rows_predicted", "counter", "rows",
              "Rows scored by in-database prediction functions.",
              "repro.deploy.predict_functions"),
        # -- repro.yarn --------------------------------------------------------
        _spec("yarn_containers_granted", "counter", "1",
              "Containers allocated by the resource manager.",
              "repro.yarn.resource_manager"),
        _spec("yarn_containers_released", "counter", "1",
              "Containers released back to the resource manager.",
              "repro.yarn.resource_manager"),
        # -- repro.spark -------------------------------------------------------
        _spec("spark_tasks", "counter", "1",
              "Tasks dispatched by the Spark comparator context.",
              "repro.spark.context"),
        _spec("rdd_partitions_computed", "counter", "1",
              "RDD partitions computed (cache misses included).",
              "repro.spark.rdd"),
        _spec("rdd_cache_hits", "counter", "1",
              "RDD partition computations served from cache.",
              "repro.spark.rdd"),
        # -- repro.serving -----------------------------------------------------
        _spec("sessions_active", "gauge", "1",
              "Serving sessions currently open against the Server.",
              "repro.serving.server"),
        _spec("statements_served", "counter", "1",
              "Statements completed through serving sessions (cached or run).",
              "repro.serving.server"),
        _spec("statements_rejected", "counter", "1",
              "Statements refused by admission control (queue full/timeout).",
              "repro.serving.pools"),
        _spec("admission_queue_seconds", "histogram", "seconds",
              "Time admitted statements waited for a pool execution slot.",
              "repro.serving.pools"),
        _spec("plan_cache_hits", "counter", "1",
              "Statements that reused a cached parse + semantic analysis.",
              "repro.serving.cache"),
        _spec("plan_cache_misses", "counter", "1",
              "Statements that parsed and analyzed fresh (cache cold/evicted).",
              "repro.serving.cache"),
        _spec("result_cache_hits", "counter", "1",
              "SELECT statements answered from the epoch-keyed result cache.",
              "repro.serving.cache"),
        _spec("result_cache_misses", "counter", "1",
              "Cacheable SELECTs that executed because no fresh entry existed.",
              "repro.serving.cache"),
        # -- repro.aqp -----------------------------------------------------
        _spec("samples_built", "counter", "1",
              "Stored samples materialized by CREATE SAMPLE.",
              "repro.aqp.build"),
        _spec("aqp_rewrites", "counter", "1",
              "WITHIN queries answered approximately from a stored sample.",
              "repro.aqp.rewrite"),
        _spec("aqp_fallbacks", "counter", "1",
              "WITHIN queries that fell back to exact execution "
              "(no sample, empty sample, or error bound unmet).",
              "repro.aqp.rewrite"),
        _spec("sample_rows_folded", "counter", "rows",
              "Base-table delta rows folded into samples by REFRESH passes.",
              "repro.aqp.refresh"),
        _spec("sample_rebuilds", "counter", "1",
              "Sample refreshes that fell back to a from-scratch rebuild "
              "(deletes in the window or AHM advanced past the stamp).",
              "repro.aqp.refresh"),
        _spec("sample_staleness_epochs", "gauge", "1",
              "Epochs between a sample's commit stamp and its base table's "
              "mutation epoch, observed at each refresh pass.",
              "repro.aqp.refresh"),
    ]
}


def declared_instruments() -> list[InstrumentSpec]:
    """The static catalog, sorted by (module, name) for stable rendering."""
    return sorted(CATALOG.values(), key=lambda s: (s.module, s.name))


def catalog_markdown_table() -> str:
    """Render the catalog as the markdown table used by the docs.

    ``python -m repro.obs.metrics`` prints this; ``docs/metrics_reference.md``
    embeds it and ``tests/test_docs_drift.py`` keeps the two in sync.
    """
    lines = [
        "| name | type | unit | emitted by | description |",
        "|---|---|---|---|---|",
    ]
    for spec in declared_instruments():
        kind = "gauge (watermark)" if spec.watermark else spec.kind
        lines.append(
            f"| `{spec.name}` | {kind} | {spec.unit} | `{spec.module}` "
            f"| {spec.description} |"
        )
    return "\n".join(lines)


# -- instruments ---------------------------------------------------------------


class _Instrument:
    """Base: spec + per-instrument lock."""

    def __init__(self, spec: InstrumentSpec, dynamic: bool = False) -> None:
        self.spec = spec
        self.dynamic = dynamic  # auto-registered, not part of the catalog
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.spec.name

    def snapshot_into(self, out: dict[str, float]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    def __init__(self, spec: InstrumentSpec, dynamic: bool = False) -> None:
        super().__init__(spec, dynamic)
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0 and not self.dynamic:
            raise ValueError(
                f"counter {self.name!r} is monotonic; got negative {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_into(self, out: dict[str, float]) -> None:
        out[self.name] = self.value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """A level with a high-water mark; levels never go below zero.

    Level gauges snapshot as ``<name>_now`` / ``<name>_peak``; watermark
    gauges (``spec.watermark``) only track the maximum ever observed and
    snapshot under the bare name.
    """

    def __init__(self, spec: InstrumentSpec, dynamic: bool = False) -> None:
        super().__init__(spec, dynamic)
        self._now = 0.0
        self._peak = 0.0

    def add(self, delta: float) -> float:
        """Adjust the level; returns the new (clamped) level.

        The clamp matters after :meth:`reset`: in-flight streams that
        charged the gauge before the reset still decrement it afterwards,
        and without the clamp the level goes (and stays) negative.
        """
        with self._lock:
            self._now = max(0.0, self._now + delta)
            if self._now > self._peak:
                self._peak = self._now
            return self._now

    def observe_max(self, value: float) -> None:
        """Record ``value`` into the high-water mark only."""
        with self._lock:
            if value > self._peak:
                self._peak = value

    @property
    def now(self) -> float:
        with self._lock:
            return self._now

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak

    def snapshot_into(self, out: dict[str, float]) -> None:
        with self._lock:
            if self.spec.watermark:
                out[self.name] = self._peak
            else:
                out[f"{self.name}_now"] = self._now
                out[f"{self.name}_peak"] = self._peak

    def reset(self) -> None:
        with self._lock:
            self._now = 0.0
            self._peak = 0.0


class Histogram(_Instrument):
    """A value distribution summarised as count / sum / min / max."""

    def __init__(self, spec: InstrumentSpec, dynamic: bool = False) -> None:
        super().__init__(spec, dynamic)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def stats(self) -> dict[str, float]:
        with self._lock:
            if not self._count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
            return {"count": self._count, "sum": self._sum,
                    "min": self._min, "max": self._max}

    def snapshot_into(self, out: dict[str, float]) -> None:
        for key, value in self.stats().items():
            out[f"{self.name}_{key}"] = value

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


# -- the registry --------------------------------------------------------------

_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Holds one live instrument per declared (or dynamic) metric name.

    Each :class:`~repro.vertica.cluster.VerticaCluster` and
    :class:`~repro.dr.session.DRSession` owns a registry (via its
    ``Telemetry``), so concurrently running engines never share values.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        _REGISTRIES.add(self)

    def _get(self, name: str, kind: str,
             watermark: bool = False) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if instrument.spec.kind != kind:
                    raise TypeError(
                        f"metric {name!r} is a {instrument.spec.kind}, "
                        f"used as a {kind}"
                    )
                return instrument
            spec = CATALOG.get(name)
            dynamic = spec is None
            if dynamic:
                spec = InstrumentSpec(name, kind, "1",
                                      "(dynamically registered)", "(dynamic)",
                                      watermark=watermark and kind == "gauge")
            elif spec.kind != kind:
                raise TypeError(
                    f"metric {name!r} is declared as a {spec.kind}, "
                    f"used as a {kind}"
                )
            instrument = _KIND_CLASSES[kind](spec, dynamic=dynamic)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")  # type: ignore[return-value]

    def gauge(self, name: str, watermark: bool = False) -> Gauge:
        """``watermark`` only affects *dynamic* creation; declared gauges
        keep their catalog spec."""
        return self._get(name, "gauge", watermark)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")  # type: ignore[return-value]

    def find(self, name: str) -> _Instrument | None:
        """A live instrument by exact name, or None — never creates."""
        with self._lock:
            return self._instruments.get(name)

    def kind_of(self, name: str) -> str | None:
        """The kind of a live or declared instrument, or None."""
        with self._lock:
            instrument = self._instruments.get(name)
        if instrument is not None:
            return instrument.spec.kind
        spec = CATALOG.get(name)
        return spec.kind if spec is not None else None

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> dict[str, float]:
        """Flat name→value dict (gauges/histograms expand to suffixed keys)."""
        out: dict[str, float] = {}
        for instrument in self.instruments():
            instrument.snapshot_into(out)
        return out

    def reset(self) -> None:
        for instrument in self.instruments():
            instrument.reset()


if __name__ == "__main__":  # pragma: no cover - doc generator entry point
    print(catalog_markdown_table())
