"""Models of the Spark comparison and the end-to-end workflow (Figs 20, 21).

Figure 20 compares per-iteration K-means time between Distributed R (on
Vertica) and Spark (on HDFS) under weak scaling; Figure 21 adds load time:
Vertica's VFT path pays deserialize/decompress/convert costs that HDFS does
not, but wins back the difference with faster iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfmodel.hardware import GB, SL390, HardwareProfile
from repro.perfmodel.transfer_model import model_vft_transfer

__all__ = [
    "model_kmeans_iteration_blas",
    "model_spark_kmeans_iteration",
    "EndToEndResult",
    "model_end_to_end_kmeans",
]


def _kmeans_flops(rows: float, features: int, k: int) -> float:
    return 2.0 * rows * features * k


def model_kmeans_iteration_blas(
    rows: float, features: int, k: int, nodes: int,
    profile: HardwareProfile = SL390,
) -> float:
    """One Distributed R iteration with the BLAS-backed kernel (Fig 20)."""
    if nodes < 1:
        raise SimulationError("nodes must be positive")
    flops = _kmeans_flops(rows, features, k)
    return flops / (profile.dr_blas_flops_per_s_per_node * nodes)


def model_spark_kmeans_iteration(
    rows: float, features: int, k: int, nodes: int,
    profile: HardwareProfile = SL390,
) -> float:
    """One Spark MLlib iteration on the same workload (Fig 20)."""
    if nodes < 1:
        raise SimulationError("nodes must be positive")
    flops = _kmeans_flops(rows, features, k)
    return flops / (profile.spark_blas_flops_per_s_per_node * nodes)


@dataclass
class EndToEndResult:
    """Load + iterate totals for one system (Fig 21)."""

    system: str
    load_seconds: float
    per_iteration_seconds: float
    iterations: int

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.per_iteration_seconds * self.iterations


def model_end_to_end_kmeans(
    rows: float,
    features: int,
    k: int,
    nodes: int,
    on_disk_gb: float,
    iterations: int = 1,
    instances_per_node: int = 2,
    profile: HardwareProfile = SL390,
) -> dict[str, EndToEndResult]:
    """Figure 21: Vertica+DR vs Spark-on-HDFS vs DR-from-ext4.

    ``on_disk_gb`` is the dataset's on-disk footprint (the paper's 240M x
    100 dataset is ~180 GB).  ``instances_per_node`` defaults to 2 — the
    end-to-end runs configure Distributed R for compute, not for transfer
    parallelism, which is why the paper's 15-minute Vertica load is slower
    than a Fig 13-style 24-instance load of the same bytes.  Returns one
    result per system.
    """
    if on_disk_gb <= 0 or iterations < 1:
        raise SimulationError("on_disk_gb and iterations must be positive")
    vft = model_vft_transfer(on_disk_gb, nodes, instances_per_node, profile)
    dr_iteration = model_kmeans_iteration_blas(rows, features, k, nodes, profile)
    spark_iteration = model_spark_kmeans_iteration(rows, features, k, nodes, profile)
    bytes_per_node = on_disk_gb * GB / nodes
    spark_load = bytes_per_node / profile.spark_hdfs_load_bytes_per_s_per_node
    ext4_load = bytes_per_node / profile.dr_ext4_load_bytes_per_s_per_node
    return {
        "vertica+dr": EndToEndResult(
            "vertica+dr", vft.total_seconds, dr_iteration, iterations
        ),
        "spark+hdfs": EndToEndResult(
            "spark+hdfs", spark_load, spark_iteration, iterations
        ),
        "dr+ext4": EndToEndResult(
            "dr+ext4", ext4_load, dr_iteration, iterations
        ),
    }
