"""Calibration provenance: the paper observations that pin each constant.

``PAPER_OBSERVATIONS`` records every number the paper's evaluation states in
text or that can be read directly off a figure, tagged with which ones were
used to *calibrate* :data:`repro.perfmodel.hardware.SL390` (at most one or
two per mechanism) — all the others are held out and checked by
:func:`validate_calibration`, which replays each observation through the
models and reports the relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.perfmodel.algorithm_model import (
    model_kmeans_iteration_dr,
    model_kmeans_iteration_r,
    model_regression_dr,
    model_regression_r,
)
from repro.perfmodel.hardware import SL390, HardwareProfile
from repro.perfmodel.predict_model import model_in_db_prediction
from repro.perfmodel.spark_model import (
    model_kmeans_iteration_blas,
    model_spark_kmeans_iteration,
)
from repro.perfmodel.transfer_model import model_vft_transfer, simulate_odbc_transfer

__all__ = ["PaperObservation", "PAPER_OBSERVATIONS", "validate_calibration"]


@dataclass
class PaperObservation:
    """One number stated in (or read off) the paper's evaluation."""

    figure: str
    description: str
    paper_seconds: float
    modelled: Callable[[HardwareProfile], float]
    used_for_calibration: bool = False
    tolerance: float = 0.35  # relative error allowed for held-out points


PAPER_OBSERVATIONS: list[PaperObservation] = [
    PaperObservation(
        "Fig 1", "single R instance, 50 GB over one ODBC connection ~1 h",
        3300.0,
        lambda p: simulate_odbc_transfer(50, 5, 1, p).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 1/12", "Distributed R, 120 ODBC connections, 150 GB ~40 min",
        2400.0,
        lambda p: simulate_odbc_transfer(150, 5, 120, p).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 12", "VFT, 150 GB on 5 nodes < 6 min",
        330.0,
        lambda p: model_vft_transfer(150, 5, 24, p).total_seconds,
        tolerance=0.35,
    ),
    PaperObservation(
        "Fig 13", "288 ODBC connections, 400 GB on 12 nodes ~1 h",
        3500.0,
        lambda p: simulate_odbc_transfer(400, 12, 288, p).total_seconds,
        tolerance=0.35,
    ),
    PaperObservation(
        "Fig 13", "VFT, 400 GB on 12 nodes < 10 min",
        480.0,
        lambda p: model_vft_transfer(400, 12, 24, p).total_seconds,
        used_for_calibration=True,  # pins the DB export rate with Fig 14
    ),
    PaperObservation(
        "Fig 14", "VFT 400 GB/12 nodes: DB component constant ~300 s",
        300.0,
        lambda p: model_vft_transfer(400, 12, 24, p).db_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 15", "K-means prediction on 10 M rows < 20 s",
        17.0,
        lambda p: model_in_db_prediction(1e7, "kmeans", 5, p).total_seconds,
        tolerance=0.35,
    ),
    PaperObservation(
        "Fig 15", "K-means prediction on 1 B rows = 318 s",
        318.0,
        lambda p: model_in_db_prediction(1e9, "kmeans", 5, p).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 16", "GLM prediction on 10 M rows < 10 s",
        10.0,
        lambda p: model_in_db_prediction(1e7, "glm", 5, p).total_seconds,
        tolerance=0.35,
    ),
    PaperObservation(
        "Fig 16", "GLM prediction on 1 B rows = 206 s",
        206.0,
        lambda p: model_in_db_prediction(1e9, "glm", 5, p).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 17", "R K-means iteration (1M x 100, K=1000) ~35 min, any cores",
        2100.0,
        lambda p: model_kmeans_iteration_r(1e6, 100, 1000, p).per_iteration_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 17", "DR K-means iteration < 4 min at 12+ cores (9x speedup)",
        225.0,
        lambda p: model_kmeans_iteration_dr(
            1e6, 100, 1000, cores=12, profile=p
        ).per_iteration_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 18", "R regression (100M x 7) > 25 min via QR",
        1500.0,
        lambda p: model_regression_r(1e8, 7, p).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 18", "DR regression ~8 min on one core",
        480.0,
        lambda p: model_regression_dr(
            1e8, 7, cores=1, iterations=2, profile=p
        ).total_seconds,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 18", "DR regression < 1 min at 24 cores",
        50.0,
        lambda p: model_regression_dr(
            1e8, 7, cores=24, iterations=2, profile=p
        ).total_seconds,
        tolerance=0.35,
    ),
    PaperObservation(
        "Fig 19", "distributed regression iteration < 2 min (30M rows/node, p=100)",
        100.0,
        lambda p: model_regression_dr(
            2.4e8, 100, cores=24, nodes=8, iterations=1, profile=p
        ).per_iteration_seconds,
        tolerance=0.45,
    ),
    PaperObservation(
        "Fig 19", "distributed regression converges in ~4 min (2 iterations)",
        240.0,
        lambda p: model_regression_dr(
            2.4e8, 100, cores=24, nodes=8, iterations=2, profile=p
        ).total_seconds,
        tolerance=0.45,
    ),
    PaperObservation(
        "Fig 20", "DR K-means ~16 min/iteration at 8 nodes (480M x 100, K=1000)",
        960.0,
        lambda p: model_kmeans_iteration_blas(4.8e8, 100, 1000, 8, p),
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 20", "Spark K-means >= 21 min/iteration at 8 nodes",
        1260.0,
        lambda p: model_spark_kmeans_iteration(4.8e8, 100, 1000, 8, p),
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 21", "Vertica+DR load of 240M x 100 (~180 GB, 4 nodes) ~15 min",
        900.0,
        lambda p: model_vft_transfer(180, 4, 2, p).total_seconds,
        tolerance=0.45,
    ),
    PaperObservation(
        "Fig 21", "Spark load from HDFS ~11 min",
        660.0,
        lambda p: 180e9 / 4 / p.spark_hdfs_load_bytes_per_s_per_node,
        used_for_calibration=True,
    ),
    PaperObservation(
        "Fig 21", "DR load from ext4 ~5 min",
        300.0,
        lambda p: 180e9 / 4 / p.dr_ext4_load_bytes_per_s_per_node,
        used_for_calibration=True,
    ),
]


def validate_calibration(
    profile: HardwareProfile = SL390,
    held_out_only: bool = False,
) -> list[dict]:
    """Replay every observation; returns dicts with modelled vs paper.

    Each entry has ``figure``, ``description``, ``paper_seconds``,
    ``modelled_seconds``, ``relative_error``, ``calibrated``, ``within_tolerance``.
    """
    report = []
    for observation in PAPER_OBSERVATIONS:
        if held_out_only and observation.used_for_calibration:
            continue
        modelled = observation.modelled(profile)
        relative_error = abs(modelled - observation.paper_seconds) / observation.paper_seconds
        report.append({
            "figure": observation.figure,
            "description": observation.description,
            "paper_seconds": observation.paper_seconds,
            "modelled_seconds": modelled,
            "relative_error": relative_error,
            "calibrated": observation.used_for_calibration,
            "within_tolerance": relative_error <= observation.tolerance,
        })
    return report
