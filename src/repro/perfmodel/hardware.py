"""Hardware profiles for paper-scale performance replay.

The paper's testbed: "24 HP SL390 servers … Each server has 24
hyper-threaded 2.67 GHz cores (Intel Xeon X5650), 196 GB of RAM, 120 GB
SSD, and are connected with full bisection bandwidth on a 10Gbps network"
(§7).  :data:`SL390` captures that machine as the rate constants the
discrete-event and analytic models consume.

Calibration: each constant is pinned by one (or two) observations from the
paper's own figures — see the per-field comments and
:mod:`repro.perfmodel.calibration` for the provenance.  Everything else
(every other point of every figure) is then *predicted* by the mechanisms,
not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HardwareProfile", "SL390", "scaled_profile"]

GB = 1e9
ROWS_PER_GB = 20e6  # "50 GB to 150 GB … approximately 1 to 3 billion rows" (§7.1)


@dataclass(frozen=True)
class HardwareProfile:
    """Rate constants for one machine class (all times in seconds)."""

    # -- machine shape ------------------------------------------------------
    cores_per_node: int = 24           # hyper-threaded
    physical_cores_per_node: int = 12  # "the node has only 12 physical cores" (§7.3.1)
    memory_bytes_per_node: int = int(196 * GB)
    network_bytes_per_s: float = 1.25e9  # 10 Gbps full bisection

    # -- database scan service (ODBC path) ------------------------------------
    # Concurrent ODBC result scans a node serves at once; more connections
    # queue (the "overwhelm the database" mechanism).
    db_scan_slots_per_node: int = 4
    # Per returned row: deserialize, convert to text, push to the socket.
    # Pinned with odbc_probe_s by Fig 1 (single R, 50 GB ≈ 55 min) and
    # Fig 12 (120 connections, 150 GB ≈ 40 min).
    odbc_extract_s_per_row: float = 5.4e-6
    # Per *segment* row per query: locating an ordered row range forces each
    # node to probe its whole local segment, so K concurrent range queries
    # pay K full-segment probes — the cost that grows with connection count.
    odbc_probe_s_per_row: float = 6.8e-8
    # Client-side: read the stream and parse one text row into R objects.
    # This overlaps with the server (pipelined), so it only binds when the
    # client is the bottleneck — the single-connection case of Fig 1.
    odbc_client_parse_s_per_row: float = 3.2e-6
    odbc_connection_setup_s: float = 0.5

    # -- Vertica Fast Transfer ---------------------------------------------------
    # DB side: read from disk, decompress, re-encode column blocks, send.
    # "Time taken by the database is constant and independent of the
    # parallelism in Distributed R" (Fig 14): one pipeline rate per node.
    # Pinned by Fig 14's flat DB component (~300 s for 33 GB/node).
    vft_db_export_bytes_per_s: float = 1.11e8
    # R side: receive, buffer in shm, convert to R objects — scales with the
    # number of R instances per node (Fig 14's shrinking R component).
    vft_r_convert_bytes_per_s_per_instance: float = 6.0e7
    # Diminishing returns past the physical core count.
    vft_r_max_effective_instances: int = 12
    vft_fixed_overhead_s: float = 5.0

    # -- in-database prediction (Figs 15/16) -----------------------------------------
    # Fixed planner + model-load latency, then rows stream through parallel
    # UDF instances.  Rates are per node; pinned by the 1-billion-row points.
    predict_fixed_overhead_s: float = 10.0
    kmeans_predict_s_per_row_per_node: float = 1.54e-6   # Fig 15: 1B rows / 5 nodes = 318 s
    glm_predict_s_per_row_per_node: float = 0.98e-6      # Fig 16: 1B rows / 5 nodes = 206 s

    # -- K-means iteration kernels ------------------------------------------------
    # Fig 17 runs the R-level kernel inside each Distributed R instance
    # (interpreted, per-core); Fig 20 runs the BLAS-backed implementation
    # shared with MLlib ("optimized linear algebra libraries", §7).
    r_kernel_flops_per_s_per_core: float = 9.5e7    # Fig 17: R, 2e11 flops ≈ 35 min
    dr_kernel_flops_per_s_per_core: float = 7.6e7   # Fig 17: DR, 12 cores ≈ <4 min
    dr_blas_flops_per_s_per_node: float = 1.25e10   # Fig 20: DR, 60M rows ≈ 16 min/iter
    spark_blas_flops_per_s_per_node: float = 9.5e9  # Fig 20: Spark ≈ 21 min/iter
    kmeans_iteration_overhead_s: float = 3.0

    # -- GLM / regression kernels ---------------------------------------------------
    # Distributed Newton-Raphson: one IRLS pass costs alpha*p + beta*p^2
    # per row per core (the X'WX accumulation grows quadratically in the
    # coefficient count).  Pinned by Fig 18 (100M x 7, 1 core ≈ 8 min)
    # together with Fig 19 (30M rows/node at p = 101, < 2 min/iteration).
    dr_glm_s_per_row_per_feature_per_core: float = 2.88e-7
    dr_glm_s_per_row_per_feature_sq_per_core: float = 1.46e-9
    # Stock R's lm(): QR decomposition, O(n p^2) with R's memory traffic.
    # Seconds per row at p = 8 coefficients (the model scales it by p²/64).
    # Pinned by Fig 18 (R > 25 min on 100M x 7).
    r_lm_s_per_row_per_feature_sq: float = 1.5e-5
    glm_iteration_overhead_s: float = 2.0

    # -- load paths for the end-to-end comparison (Fig 21) ----------------------------
    spark_hdfs_load_bytes_per_s_per_node: float = 6.8e7  # load 45 GB/node in ~11 min
    dr_ext4_load_bytes_per_s_per_node: float = 1.5e8     # "just 5 minutes" from ext4


SL390 = HardwareProfile()


def scaled_profile(base: HardwareProfile = SL390, speed: float = 1.0,
                   **overrides) -> HardwareProfile:
    """A profile uniformly ``speed`` times faster than ``base`` (rate fields
    scaled, per-unit costs divided), with optional field overrides."""
    if speed <= 0:
        raise ValueError("speed factor must be positive")
    rate_fields = [
        "network_bytes_per_s",
        "vft_db_export_bytes_per_s",
        "vft_r_convert_bytes_per_s_per_instance",
        "r_kernel_flops_per_s_per_core",
        "dr_kernel_flops_per_s_per_core",
        "dr_blas_flops_per_s_per_node",
        "spark_blas_flops_per_s_per_node",
        "spark_hdfs_load_bytes_per_s_per_node",
        "dr_ext4_load_bytes_per_s_per_node",
    ]
    cost_fields = [
        "odbc_extract_s_per_row",
        "odbc_probe_s_per_row",
        "odbc_client_parse_s_per_row",
        "kmeans_predict_s_per_row_per_node",
        "glm_predict_s_per_row_per_node",
        "dr_glm_s_per_row_per_feature_per_core",
        "r_lm_s_per_row_per_feature_sq",
    ]
    updates = {}
    for name in rate_fields:
        updates[name] = getattr(base, name) * speed
    for name in cost_fields:
        updates[name] = getattr(base, name) / speed
    updates.update(overrides)
    return replace(base, **updates)
