"""Performance models of the two transfer paths (Figs 1, 12, 13, 14).

The ODBC model is a discrete-event simulation on :mod:`repro.simkit`: every
connection is a process whose ordered-range query forces a full-segment
probe on every node, queueing on the node's bounded scan slots.  The VFT
model is the two-stage pipeline of Fig 14: a constant database export stage
plus an R conversion stage that shrinks with the number of R instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfmodel.hardware import GB, ROWS_PER_GB, SL390, HardwareProfile
from repro.simkit import Environment, Monitor, Resource

__all__ = ["OdbcTransferResult", "VftTransferResult",
           "simulate_odbc_transfer", "model_vft_transfer"]


@dataclass
class OdbcTransferResult:
    """Outcome of one simulated ODBC extraction."""

    total_seconds: float
    connections: int
    rows: float
    peak_queue_depth: int
    mean_slot_utilization: float

    @property
    def minutes(self) -> float:
        return self.total_seconds / 60.0


@dataclass
class VftTransferResult:
    """Outcome of one modelled VFT load, with the Fig 14 breakdown."""

    total_seconds: float
    db_seconds: float
    r_seconds: float
    instances_per_node: int

    @property
    def minutes(self) -> float:
        return self.total_seconds / 60.0


def simulate_odbc_transfer(
    table_gb: float,
    db_nodes: int,
    connections: int,
    profile: HardwareProfile = SL390,
    rows_per_gb: float = ROWS_PER_GB,
    segment_skew: list[float] | None = None,
) -> OdbcTransferResult:
    """DES of parallel ODBC extraction.

    Mechanism: connection *i* requests global rows ``[i·N/K, (i+1)·N/K)``.
    Serving that range requires every node to (a) probe its whole local
    segment for matching row positions and (b) extract + text-serialize the
    matching rows — all while holding one of the node's scan slots.  The
    client then parses its rows.  ``segment_skew`` optionally weights rows
    per node (uniform by default).
    """
    if table_gb <= 0 or db_nodes < 1 or connections < 1:
        raise SimulationError("table size, node count, and connections must be positive")
    total_rows = table_gb * rows_per_gb
    weights = segment_skew or [1.0] * db_nodes
    if len(weights) != db_nodes:
        raise SimulationError(f"{len(weights)} skew weights for {db_nodes} nodes")
    weight_sum = sum(weights)
    segment_rows = [total_rows * w / weight_sum for w in weights]
    rows_per_connection = total_rows / connections

    env = Environment()
    slots = [Resource(env, capacity=profile.db_scan_slots_per_node)
             for _ in range(db_nodes)]
    queue_monitor = Monitor(env, "scan-queue")
    busy_time = [0.0]

    def serve_on_node(node: int, rows_from_node: float):
        request = slots[node].request()
        queue_monitor.observe(sum(s.queue_length for s in slots))
        yield request
        try:
            service = (
                segment_rows[node] * profile.odbc_probe_s_per_row
                + rows_from_node * profile.odbc_extract_s_per_row
            )
            busy_time[0] += service
            yield env.timeout(service)
        finally:
            slots[node].release(request)

    def connection(index: int):
        yield env.timeout(profile.odbc_connection_setup_s)
        started = env.now
        # The driver fetches its range from all nodes concurrently; the
        # range is spread across nodes proportionally to segment size.
        fetches = [
            env.process(serve_on_node(
                node, rows_per_connection * weights[node] / weight_sum))
            for node in range(db_nodes)
        ]
        yield env.all_of(fetches)
        # Client-side stream read + parse is pipelined with the server: it
        # only extends the connection when the client is slower than the
        # servers (the single-connection bottleneck of Fig 1).
        parse_total = rows_per_connection * profile.odbc_client_parse_s_per_row
        remaining = parse_total - (env.now - started)
        if remaining > 0:
            yield env.timeout(remaining)

    processes = [env.process(connection(i)) for i in range(connections)]
    env.run(env.all_of(processes))

    makespan = env.now
    slot_capacity_seconds = makespan * db_nodes * profile.db_scan_slots_per_node
    return OdbcTransferResult(
        total_seconds=makespan,
        connections=connections,
        rows=total_rows,
        peak_queue_depth=int(queue_monitor.maximum()) if len(queue_monitor) else 0,
        mean_slot_utilization=(
            busy_time[0] / slot_capacity_seconds if slot_capacity_seconds else 0.0
        ),
    )


def model_vft_transfer(
    table_gb: float,
    db_nodes: int,
    instances_per_node: int = 24,
    profile: HardwareProfile = SL390,
    segment_skew: list[float] | None = None,
) -> VftTransferResult:
    """Analytic model of a VFT load (the Fig 14 two-component breakdown).

    The DB component is the per-node export pipeline (disk read, decompress,
    block re-encode, send) — constant in R-side parallelism because "the
    database … uses the same amount of parallelism and resources as
    specified by its query planner".  The R component is staging + object
    conversion, divided across effective R instances.  With skewed
    segments the slowest node dominates (locality-preserving policy).
    """
    if table_gb <= 0 or db_nodes < 1 or instances_per_node < 1:
        raise SimulationError("table size, nodes, and instances must be positive")
    weights = segment_skew or [1.0] * db_nodes
    if len(weights) != db_nodes:
        raise SimulationError(f"{len(weights)} skew weights for {db_nodes} nodes")
    weight_sum = sum(weights)
    bytes_per_node = [table_gb * GB * w / weight_sum for w in weights]

    effective_instances = min(instances_per_node, profile.vft_r_max_effective_instances)
    db_times = [b / profile.vft_db_export_bytes_per_s for b in bytes_per_node]
    r_times = [
        b / (profile.vft_r_convert_bytes_per_s_per_instance * effective_instances)
        for b in bytes_per_node
    ]
    # Per-node, the two stages are sequential per buffered chunk (receive
    # then convert); across nodes they run in parallel — the slowest node
    # sets the makespan.
    db_component = max(db_times)
    r_component = max(r_times)
    total = profile.vft_fixed_overhead_s + db_component + r_component
    return VftTransferResult(
        total_seconds=total,
        db_seconds=db_component,
        r_seconds=r_component,
        instances_per_node=instances_per_node,
    )
