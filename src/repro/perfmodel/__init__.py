"""Paper-scale performance replay: a calibrated SL390 hardware profile plus
discrete-event / analytic models of every mechanism the figures measure."""

from repro.perfmodel.algorithm_model import (
    IterationTime,
    model_kmeans_iteration_dr,
    model_kmeans_iteration_r,
    model_regression_dr,
    model_regression_r,
)
from repro.perfmodel.calibration import (
    PAPER_OBSERVATIONS,
    PaperObservation,
    validate_calibration,
)
from repro.perfmodel.hardware import GB, ROWS_PER_GB, SL390, HardwareProfile, scaled_profile
from repro.perfmodel.predict_model import (
    PredictionResult,
    model_in_db_prediction,
    simulate_prediction_fanout,
)
from repro.perfmodel.spark_model import (
    EndToEndResult,
    model_end_to_end_kmeans,
    model_kmeans_iteration_blas,
    model_spark_kmeans_iteration,
)
from repro.perfmodel.transfer_model import (
    OdbcTransferResult,
    VftTransferResult,
    model_vft_transfer,
    simulate_odbc_transfer,
)

__all__ = [
    "HardwareProfile",
    "SL390",
    "scaled_profile",
    "GB",
    "ROWS_PER_GB",
    "simulate_odbc_transfer",
    "model_vft_transfer",
    "OdbcTransferResult",
    "VftTransferResult",
    "model_in_db_prediction",
    "simulate_prediction_fanout",
    "PredictionResult",
    "model_kmeans_iteration_r",
    "model_kmeans_iteration_dr",
    "model_regression_r",
    "model_regression_dr",
    "IterationTime",
    "model_kmeans_iteration_blas",
    "model_spark_kmeans_iteration",
    "model_end_to_end_kmeans",
    "EndToEndResult",
    "PAPER_OBSERVATIONS",
    "PaperObservation",
    "validate_calibration",
]
