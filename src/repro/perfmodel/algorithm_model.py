"""Models of algorithm runtime: the R-vs-DR and scaling figures (17, 18, 19).

Two K-means kernels exist in the integrated product: the R-level kernel
each Distributed R instance runs when executing R code (Fig 17), and the
BLAS-backed kernel shared with MLlib (Fig 20, in
:mod:`repro.perfmodel.spark_model`).  Regression compares stock R's QR
decomposition with Distributed R's Newton-Raphson (Fig 18) — a difference
in *algorithm*, not just parallelism, which is why single-core Distributed
R already beats R.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfmodel.hardware import SL390, HardwareProfile

__all__ = [
    "IterationTime",
    "model_kmeans_iteration_r",
    "model_kmeans_iteration_dr",
    "model_regression_r",
    "model_regression_dr",
]


@dataclass
class IterationTime:
    """Seconds for one iteration (and convergence when iterations given)."""

    per_iteration_seconds: float
    iterations: int = 1

    @property
    def total_seconds(self) -> float:
        return self.per_iteration_seconds * self.iterations

    @property
    def per_iteration_minutes(self) -> float:
        return self.per_iteration_seconds / 60.0


def _kmeans_flops(rows: float, features: int, k: int) -> float:
    """One Lloyd iteration: a multiply-add per (point, center, feature)."""
    return 2.0 * rows * features * k


def model_kmeans_iteration_r(
    rows: float, features: int, k: int, profile: HardwareProfile = SL390
) -> IterationTime:
    """Stock R: single-threaded regardless of available cores (Fig 17)."""
    flops = _kmeans_flops(rows, features, k)
    return IterationTime(flops / profile.r_kernel_flops_per_s_per_core)


def model_kmeans_iteration_dr(
    rows: float,
    features: int,
    k: int,
    cores: int = 1,
    nodes: int = 1,
    profile: HardwareProfile = SL390,
    skew: list[float] | None = None,
) -> IterationTime:
    """Distributed R, R-level kernel: scales to physical cores then
    plateaus ("the performance plateaus beyond 12 cores because the node
    has only 12 physical cores and the K-means algorithm is compute
    bound", §7.3.1).  With ``skew``, the most loaded node dominates
    (the straggler effect of §3.2).
    """
    if cores < 1 or nodes < 1:
        raise SimulationError("cores and nodes must be positive")
    effective_cores = min(cores, profile.physical_cores_per_node)
    weights = skew or [1.0] * nodes
    if len(weights) != nodes:
        raise SimulationError(f"{len(weights)} skew weights for {nodes} nodes")
    worst_share = max(weights) / sum(weights)
    rows_on_worst_node = rows * worst_share
    flops = _kmeans_flops(rows_on_worst_node, features, k)
    compute = flops / (profile.dr_kernel_flops_per_s_per_core * effective_cores)
    return IterationTime(compute + profile.kmeans_iteration_overhead_s)


def model_regression_r(
    rows: float, features: int, profile: HardwareProfile = SL390
) -> IterationTime:
    """Stock R ``lm``: one QR decomposition, O(n·p²), single-threaded."""
    p = features + 1  # intercept column
    # rows * coeff * p^2, with coeff calibrated at the Fig 18 shape (p = 8),
    # hence the p²/64 normalization.
    seconds = rows * profile.r_lm_s_per_row_per_feature_sq * (p * p) / 64.0
    return IterationTime(seconds)


def model_regression_dr(
    rows: float,
    features: int,
    cores: int = 1,
    nodes: int = 1,
    iterations: int = 2,
    profile: HardwareProfile = SL390,
    skew: list[float] | None = None,
) -> IterationTime:
    """Distributed Newton-Raphson: per-iteration cost linear in rows and
    features, divided over physical cores and nodes; "converges in just 4
    minutes (2 iterations)" on the Fig 19 workload."""
    if cores < 1 or nodes < 1 or iterations < 1:
        raise SimulationError("cores, nodes, and iterations must be positive")
    p = features + 1
    effective_cores = min(cores, profile.physical_cores_per_node)
    weights = skew or [1.0] * nodes
    if len(weights) != nodes:
        raise SimulationError(f"{len(weights)} skew weights for {nodes} nodes")
    worst_share = max(weights) / sum(weights)
    rows_on_worst_node = rows * worst_share
    per_row = (
        p * profile.dr_glm_s_per_row_per_feature_per_core
        + p * p * profile.dr_glm_s_per_row_per_feature_sq_per_core
    )
    compute = rows_on_worst_node * per_row / effective_cores
    return IterationTime(
        compute + profile.glm_iteration_overhead_s, iterations=iterations
    )
