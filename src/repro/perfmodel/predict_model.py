"""Model of in-database prediction scalability (Figs 15 and 16).

Prediction is a planner-driven UDF fan-out: a fixed startup cost (plan the
query, fan out instances, fetch + deserialize the model from the local DFS
replica) followed by a streaming scan whose throughput is proportional to
the cluster's nodes ("When the table is well partitioned among the nodes of
the Vertica cluster, a near linear speedup can be achieved", §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfmodel.hardware import SL390, HardwareProfile
from repro.simkit import Environment, Resource

__all__ = ["PredictionResult", "model_in_db_prediction",
           "simulate_prediction_fanout"]


@dataclass
class PredictionResult:
    """Modelled wall time for one in-database scoring query."""

    total_seconds: float
    fixed_seconds: float
    scan_seconds: float
    rows: float
    nodes: int


def model_in_db_prediction(
    rows: float,
    model_kind: str,
    db_nodes: int = 5,
    profile: HardwareProfile = SL390,
) -> PredictionResult:
    """Time to apply a deployed model to ``rows`` table rows.

    ``model_kind`` is ``"kmeans"`` (distance to centers per row, Fig 15) or
    ``"glm"`` (dot product per row, Fig 16) — K-means costs more per row,
    which is why Fig 15 sits above Fig 16 at every size.
    """
    if rows < 0 or db_nodes < 1:
        raise SimulationError("rows and node count must be positive")
    if model_kind == "kmeans":
        per_row_per_node = profile.kmeans_predict_s_per_row_per_node
    elif model_kind == "glm":
        per_row_per_node = profile.glm_predict_s_per_row_per_node
    else:
        raise SimulationError(f"unknown model kind {model_kind!r}")
    scan = rows * per_row_per_node / db_nodes
    total = profile.predict_fixed_overhead_s + scan
    return PredictionResult(
        total_seconds=total,
        fixed_seconds=profile.predict_fixed_overhead_s,
        scan_seconds=scan,
        rows=rows,
        nodes=db_nodes,
    )


def simulate_prediction_fanout(
    rows: float,
    model_kind: str,
    db_nodes: int = 5,
    instances_per_node: int = 12,
    model_load_s: float = 1.5,
    profile: HardwareProfile = SL390,
    skew: list[float] | None = None,
) -> PredictionResult:
    """DES of the prediction fan-out (the §5 mechanism behind Figs 15/16).

    Each node's local rows are split across ``instances_per_node`` UDF
    instances; every instance first fetches + deserializes the model from
    the local DFS replica (``model_load_s``), then streams its slice.
    Instances queue on the node's physical cores, so over-fanning out past
    the core count only adds model-load overhead — the planner's reason for
    bounding parallelism by "resources available".
    """
    if rows < 0 or db_nodes < 1 or instances_per_node < 1:
        raise SimulationError("rows, nodes, and instances must be positive")
    if model_kind == "kmeans":
        per_row_per_node = profile.kmeans_predict_s_per_row_per_node
    elif model_kind == "glm":
        per_row_per_node = profile.glm_predict_s_per_row_per_node
    else:
        raise SimulationError(f"unknown model kind {model_kind!r}")
    weights = skew or [1.0] * db_nodes
    if len(weights) != db_nodes:
        raise SimulationError(f"{len(weights)} skew weights for {db_nodes} nodes")
    weight_sum = sum(weights)
    # per_row_per_node is the whole node's throughput at full parallelism;
    # one instance on one core processes 1/cores of that rate.
    per_row_per_core = per_row_per_node * profile.physical_cores_per_node

    env = Environment()
    cores = [Resource(env, capacity=profile.physical_cores_per_node)
             for _ in range(db_nodes)]

    def instance(node: int, instance_rows: float):
        request = cores[node].request()
        yield request
        try:
            yield env.timeout(model_load_s + instance_rows * per_row_per_core)
        finally:
            cores[node].release(request)

    processes = []
    for node in range(db_nodes):
        node_rows = rows * weights[node] / weight_sum
        slice_rows = node_rows / instances_per_node
        processes.extend(
            env.process(instance(node, slice_rows))
            for _ in range(instances_per_node)
        )
    env.run(env.all_of(processes))
    scan = env.now
    total = profile.predict_fixed_overhead_s + scan
    return PredictionResult(
        total_seconds=total,
        fixed_seconds=profile.predict_fixed_overhead_s,
        scan_seconds=scan,
        rows=rows,
        nodes=db_nodes,
    )
