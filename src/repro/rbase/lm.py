"""Single-threaded R baselines for regression.

"R uses matrix decomposition to implement regression" (§7.3.1): ``lm`` here
solves least squares through an explicit QR decomposition of the full design
matrix — O(n·p²) flops *plus* materializing Q, which is what makes stock R
slow on 100M rows (Figure 18).  ``glm_fit`` is the classic single-node IRLS
for the logistic/poisson baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.families import Family, family_by_name
from repro.errors import ConvergenceError, ModelError

__all__ = ["LmFit", "lm", "glm_fit"]


@dataclass
class LmFit:
    """An ``lm()`` result: coefficients and residual statistics."""

    coefficients: np.ndarray
    residual_sum_of_squares: float
    r_squared: float
    n_observations: int
    intercept: bool

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if self.intercept:
            return self.coefficients[0] + features @ self.coefficients[1:]
        return features @ self.coefficients


def lm(features: np.ndarray, responses: np.ndarray, intercept: bool = True) -> LmFit:
    """Least squares via QR decomposition (R's ``lm`` code path)."""
    x = np.asarray(features, dtype=np.float64)
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    y = np.asarray(responses, dtype=np.float64).ravel()
    if len(x) != len(y):
        raise ModelError(f"row mismatch: {len(x)} features vs {len(y)} responses")
    if intercept:
        x = np.column_stack([np.ones(len(x)), x])
    if len(y) < x.shape[1]:
        raise ModelError("more coefficients than observations")
    # The decomposition R performs: X = QR, then solve R b = Q'y.
    q, r = np.linalg.qr(x)
    coefficients = np.linalg.solve(r, q.T @ y)
    residuals = y - x @ coefficients
    rss = float(residuals @ residuals)
    tss = float(np.sum((y - y.mean()) ** 2))
    return LmFit(
        coefficients=coefficients,
        residual_sum_of_squares=rss,
        r_squared=1.0 - rss / tss if tss > 0 else 1.0,
        n_observations=len(y),
        intercept=intercept,
    )


def glm_fit(
    features: np.ndarray,
    responses: np.ndarray,
    family: Family | str = "binomial",
    intercept: bool = True,
    max_iterations: int = 25,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Single-node IRLS; returns the coefficient vector."""
    if isinstance(family, str):
        family = family_by_name(family)
    x = np.asarray(features, dtype=np.float64)
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    y = np.asarray(responses, dtype=np.float64).ravel()
    family.validate_response(y)
    if intercept:
        x = np.column_stack([np.ones(len(x)), x])
    beta = np.zeros(x.shape[1])
    deviance = np.inf
    for _ in range(max_iterations):
        eta = x @ beta
        mu = family.inverse_link(eta)
        dmu = family.mean_derivative(eta)
        variance = family.variance(mu)
        weights = np.clip(dmu * dmu / variance, 1e-12, None)
        working = eta + (y - mu) / np.clip(dmu, 1e-12, None)
        weighted_x = x * weights[:, None]
        beta = np.linalg.solve(x.T @ weighted_x, weighted_x.T @ working)
        new_deviance = float(np.sum(family.deviance(y, family.inverse_link(x @ beta))))
        if abs(new_deviance - deviance) / (abs(new_deviance) + 0.1) < tolerance:
            return beta
        deviance = new_deviance
    raise ConvergenceError(
        f"glm_fit did not converge in {max_iterations} iterations"
    )
