"""Single-threaded "stock R" baselines (the paper's comparison points)."""

from repro.rbase.kmeans import r_kmeans
from repro.rbase.lm import LmFit, glm_fit, lm

__all__ = ["lm", "LmFit", "glm_fit", "r_kmeans"]
