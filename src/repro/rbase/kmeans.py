"""Single-threaded R baseline for K-means (stock ``kmeans()``).

Same Lloyd kernel as the distributed version, run as one sequential process
over the full matrix — the Figure 17 baseline whose per-iteration time does
not improve with more cores.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kmeans import KMeansModel, assign_to_centers
from repro.errors import ModelError

__all__ = ["r_kmeans"]


def r_kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    seed: int | None = None,
    initial_centers: np.ndarray | None = None,
    iteration_callback=None,
) -> KMeansModel:
    """Sequential Lloyd's algorithm on a plain matrix."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ModelError("r_kmeans requires a 2-D matrix")
    if len(points) < k:
        raise ModelError(f"cannot pick {k} centers from {len(points)} points")
    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.shape != (k, points.shape[1]):
            raise ModelError(f"initial centers must be {(k, points.shape[1])}")
    else:
        rng = np.random.default_rng(seed)
        centers = points[rng.choice(len(points), size=k, replace=False)].copy()

    inertia = np.inf
    converged = False
    iterations = 0
    counts = np.zeros(k, dtype=np.int64)
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        labels, distances = assign_to_centers(points, centers)
        counts = np.bincount(labels, minlength=k)
        sums = np.zeros_like(centers)
        np.add.at(sums, labels, points)
        new_centers = centers.copy()
        non_empty = counts > 0
        new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
        new_inertia = float(distances.sum())
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if iteration_callback is not None:
            iteration_callback(iteration, new_inertia)
        inertia = new_inertia
        if shift <= tolerance:
            converged = True
            break

    return KMeansModel(
        centers=centers,
        inertia=inertia,
        iterations=iterations,
        converged=converged,
        n_observations=len(points),
        cluster_sizes=np.asarray(counts, dtype=np.int64),
    )
