"""Exception hierarchy shared by every repro subsystem.

Every error raised by the library derives from :class:`ReproError` so callers
can catch one base class.  Subsystem packages re-export the subset relevant to
their public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Corrupt, truncated, or otherwise unreadable columnar storage."""


class CatalogError(ReproError):
    """Unknown or duplicate catalog object (table, projection, model, UDF)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlAnalysisError(SqlError):
    """The SQL parsed but references unknown columns, tables, or functions."""


class SemanticError(SqlAnalysisError):
    """A statement was rejected by the static semantic analyzer.

    Carries the full :class:`repro.vertica.sql.analyzer.Diagnostic` list that
    the analysis pass produced (errors *and* warnings) plus the position of
    the first error, so callers can render `SAxxx` codes with source offsets.
    """

    def __init__(self, message: str, diagnostics: tuple = (),
                 position: int | None = None) -> None:
        self.diagnostics = tuple(diagnostics)
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SemanticResolutionError(SemanticError, CatalogError):
    """A semantic diagnostic about a *missing catalog object*.

    Raised when analysis fails because a table, transform function, or model
    does not exist.  Inherits :class:`CatalogError` so callers that predate
    the analyzer and catch catalog lookups keep working unchanged.
    """


class ExecutionError(ReproError):
    """A query or UDF failed while executing."""


class SemanticParameterError(SemanticError, ExecutionError):
    """A semantic diagnostic about a UDTF's calling convention.

    Raised when a transform function call has the wrong argument count or
    types, or a missing/unknown ``USING PARAMETERS`` entry.  Inherits
    :class:`ExecutionError` because these failures historically surfaced
    while the function executed; callers catching that class keep working.
    """


class NodeDownError(ExecutionError):
    """A segment is unavailable: its node (and any buddy replica) is down.

    This is the *unrecoverable* flavor of node failure — retrying cannot
    help until an operator recovers a node — so retry loops treat it as
    fail-fast while transient transfer/execution errors are retried.
    """


class TransferError(ReproError):
    """A data transfer (ODBC or Vertica Fast Transfer) failed."""


class PartitionError(ReproError):
    """Distributed data-structure partitions are malformed or non-conforming."""


class SessionError(ReproError):
    """A Distributed R session is missing, closed, or misconfigured."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""


class ModelError(ReproError):
    """A machine-learning model is invalid for the requested operation."""


class SerializationError(ReproError):
    """A model blob failed to serialize or deserialize."""


class DfsError(ReproError):
    """The internal distributed file system rejected an operation."""


class PermissionDeniedError(ReproError):
    """The current user lacks the privilege required for the operation."""


class ResourceError(ReproError):
    """The resource manager could not satisfy an allocation request."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class ServingError(ReproError):
    """The serving layer was used incorrectly (closed session, unknown pool)."""


class AdmissionError(ServingError):
    """A statement was rejected by admission control.

    Raised when a resource pool's queue is full or the statement waited
    longer than the pool's admission timeout for an execution slot.  The
    statement did **not** run; clients may retry against a less loaded pool.
    """
