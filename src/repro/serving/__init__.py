"""The high-concurrency serving layer.

The paper's pipeline ends with in-database prediction "under heavy traffic
from millions of users"; this package is the front door that makes that
traffic shape survivable.  A :class:`Server` fronts one
:class:`~repro.vertica.cluster.VerticaCluster` with:

* :class:`Session` handles — the unit a client holds; every statement a
  session executes is admitted through a named resource pool;
* named resource pools (:class:`PoolConfig`) — per-pool max concurrency
  (optionally derived from a memory budget reserved through the YARN
  broker), a bounded admission queue, and an admission timeout with clean
  :class:`~repro.errors.AdmissionError` rejections;
* a prepared-statement **plan cache** — parse + semantic analysis happen
  once per SQL text and are re-executed per call;
* an epoch-keyed **result cache** — SELECT results keyed on the plan
  fingerprint plus the referenced tables' invalidation tokens, so any
  committed INSERT/DELETE/UPDATE or Tuple Mover purge invalidates
  naturally through the MVCC epoch clock.

See ``docs/serving.md`` for the operations walkthrough.
"""

from repro.errors import AdmissionError, ServingError
from repro.serving.cache import PlanCache, PreparedStatement, ResultCache
from repro.serving.pools import PoolConfig, ResourcePool
from repro.serving.server import Server, Session

__all__ = [
    "AdmissionError",
    "PlanCache",
    "PoolConfig",
    "PreparedStatement",
    "ResourcePool",
    "ResultCache",
    "Server",
    "ServingError",
    "Session",
]
