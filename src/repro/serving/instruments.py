"""The serving layer's observability manifest.

Every metric, span, and fault site the serving layer emits is listed here
by name.  The ``serving-registry-drift`` reprolint rule (RL905) holds this
manifest against the central registries — the metrics ``CATALOG``
(:mod:`repro.obs.metrics`), the ``SPAN_TAXONOMY``
(:mod:`repro.obs.trace`), and ``FAULT_SITES`` (:mod:`repro.faults.sites`)
— in **both** directions: a name listed here but missing from its registry
fails lint, and so does a serving-owned registry entry that this manifest
forgot.  The manifest is what keeps ``docs/serving.md`` honest about the
layer's complete operational surface.
"""

from __future__ import annotations

__all__ = ["SERVING_METRICS", "SERVING_SPANS", "SERVING_FAULT_SITES"]

#: Instruments declared under ``repro.serving.*`` modules in the metrics
#: CATALOG.
SERVING_METRICS: tuple[str, ...] = (
    "sessions_active",
    "statements_served",
    "statements_rejected",
    "admission_queue_seconds",
    "plan_cache_hits",
    "plan_cache_misses",
    "result_cache_hits",
    "result_cache_misses",
)

#: Span names the serving layer opens (the ``serve.*`` slice of the
#: SPAN_TAXONOMY).
SERVING_SPANS: tuple[str, ...] = (
    "serve.session",
    "serve.admit",
    "serve.execute",
)

#: Fault-injection sites owned by the serving layer (the ``serving.*``
#: slice of FAULT_SITES).
SERVING_FAULT_SITES: tuple[str, ...] = (
    "serving.admit",
)
