"""Named resource pools: bounded concurrency with admission control.

Each pool runs admitted statements on its own worker thread pool.  A
statement is *admitted* when a worker picks it up; until then it sits in a
bounded queue.  Admission control is two rejections deep:

* **queue full** — a submit that would exceed ``queue_depth`` waiting
  statements is refused immediately;
* **admission timeout** — a queued statement that no worker picks up
  within ``admission_timeout_seconds`` is cancelled and refused (once a
  worker has started it, it runs to completion — the timeout bounds
  *waiting*, never aborts work in flight).

Both raise :class:`~repro.errors.AdmissionError` and count
``statements_rejected``; the wait of every admitted statement lands in the
``admission_queue_seconds`` histogram.

A pool's concurrency either is set explicitly (``max_concurrency``) or is
derived from a memory budget: ``memory_budget_bytes`` divided by the
per-statement working-set estimate ``statement_memory_bytes`` — the same
arithmetic Vertica's resource manager applies to plan admission.  The
:class:`~repro.serving.server.Server` reserves budgeted pools' memory as
YARN containers so the database and Distributed R sessions draw from one
arbiter.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import AdmissionError, ServingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.telemetry import Telemetry

__all__ = ["PoolConfig", "ResourcePool", "AdmissionTicket"]

DEFAULT_STATEMENT_MEMORY = 64 * 1024 * 1024


@dataclass(frozen=True)
class PoolConfig:
    """Static description of one named resource pool."""

    name: str
    max_concurrency: int | None = None
    queue_depth: int = 16
    admission_timeout_seconds: float = 5.0
    memory_budget_bytes: int | None = None
    statement_memory_bytes: int = DEFAULT_STATEMENT_MEMORY

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("resource pool requires a name")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ServingError(
                f"pool {self.name!r}: max_concurrency must be >= 1")
        if self.queue_depth < 0:
            raise ServingError(f"pool {self.name!r}: queue_depth must be >= 0")
        if self.admission_timeout_seconds <= 0:
            raise ServingError(
                f"pool {self.name!r}: admission timeout must be positive")
        if self.statement_memory_bytes < 1:
            raise ServingError(
                f"pool {self.name!r}: statement_memory_bytes must be >= 1")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ServingError(
                f"pool {self.name!r}: memory budget must be >= 1")

    @property
    def concurrency(self) -> int:
        """Execution slots: explicit, or derived from the memory budget."""
        if self.max_concurrency is not None:
            return self.max_concurrency
        if self.memory_budget_bytes is not None:
            return max(1, self.memory_budget_bytes // self.statement_memory_bytes)
        return 8


class AdmissionTicket:
    """Handle for one submitted statement: its future plus a started flag."""

    def __init__(self, future: "Future[Any]", submitted_at: float) -> None:
        self.future = future
        self.submitted_at = submitted_at
        self.started = threading.Event()


class ResourcePool:
    """One named pool: a worker thread pool behind a bounded queue."""

    def __init__(self, config: PoolConfig, telemetry: "Telemetry") -> None:
        self.config = config
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._closed = False
        self._workers = ThreadPoolExecutor(
            max_workers=config.concurrency,
            thread_name_prefix=f"serving-{config.name}",
        )

    # -- introspection ----------------------------------------------------

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    # -- admission --------------------------------------------------------

    def submit(self, fn: Callable[[], Any]) -> AdmissionTicket:
        """Queue ``fn`` for execution; raises on a full queue.

        ``fn`` runs on a pool worker.  The returned ticket's ``started``
        event is set by the worker the moment it claims the statement;
        callers use it with :meth:`await_admission` to implement the
        admission timeout.
        """
        with self._lock:
            if self._closed:
                raise ServingError(f"pool {self.config.name!r} is closed")
            if self._queued >= self.config.queue_depth:
                self.telemetry.add("statements_rejected")
                raise AdmissionError(
                    f"pool {self.config.name!r} queue is full "
                    f"({self._queued} waiting, depth {self.config.queue_depth})"
                )
            self._queued += 1
        ticket = AdmissionTicket(Future(), time.perf_counter())

        def run() -> Any:
            with self._lock:
                self._queued -= 1
                self._running += 1
            ticket.started.set()
            self.telemetry.registry.histogram(
                "admission_queue_seconds"
            ).observe(time.perf_counter() - ticket.submitted_at)
            try:
                return fn()
            finally:
                with self._lock:
                    self._running -= 1

        try:
            ticket.future = self._workers.submit(run)
        except RuntimeError:
            with self._lock:
                self._queued -= 1
            raise ServingError(f"pool {self.config.name!r} is shut down") from None
        return ticket

    def await_admission(self, ticket: AdmissionTicket) -> float:
        """Block until a worker claims the ticket; returns the queue wait.

        On timeout the statement is cancelled if (and only if) it is still
        queued — a statement a worker already claimed runs to completion
        and its wait is returned as usual.
        """
        timeout = self.config.admission_timeout_seconds
        if ticket.started.wait(timeout):
            return time.perf_counter() - ticket.submitted_at
        if ticket.future.cancel():
            # Never started: undo the queue accounting and reject.
            with self._lock:
                self._queued -= 1
            self.telemetry.add("statements_rejected")
            raise AdmissionError(
                f"pool {self.config.name!r}: no execution slot within "
                f"{timeout:g}s (concurrency {self.config.concurrency}, "
                f"{self.queued} still waiting)"
            )
        # Lost the race with a worker: the statement is running.
        ticket.started.wait()
        return time.perf_counter() - ticket.submitted_at

    # -- lifecycle --------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._workers.shutdown(wait=wait)
