"""The serving front door: sessions over pooled, cached execution.

A :class:`Server` fronts one cluster.  Clients open :class:`Session`
handles bound to a named resource pool and push SQL through
:meth:`Session.execute`; every statement flows

``plan cache → result cache (SELECTs) → admission → pool worker → executor``

with ``serve.admit`` spanning the queue wait on the client thread and
``serve.execute`` spanning the run on the worker (the familiar ``query``
span nests inside it, so profile trees and the ``queries_executed`` /
``query_seconds`` instruments read the same whether a statement came
through the server or through ``VerticaCluster.sql``).  A result-cache hit
skips admission entirely — that is the point of the cache: under heavy
read traffic the pool only sees each distinct (plan, epoch-state) once.

Pools that declare a memory budget reserve it up front as a YARN container
(application ``serving.<pool>``) so serving capacity and Distributed R
sessions draw from the same arbiter; the reservation is released by
:meth:`Server.close`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.errors import ServingError
from repro.serving.cache import (
    PlanCache,
    PreparedStatement,
    ResultCache,
    is_cacheable,
    result_cache_key,
)
from repro.serving.pools import PoolConfig, ResourcePool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster
    from repro.vertica.executor import ResultSet
    from repro.yarn.resource_manager import Application, ResourceManager

__all__ = ["Server", "Session"]

_SESSION_IDS = itertools.count(1)


class Session:
    """One client's handle on the server: a pool binding plus identity.

    Sessions are lightweight — open one per logical client (the benchmark
    opens hundreds).  They are context managers; closing is idempotent and
    decrements the ``sessions_active`` gauge exactly once.
    """

    def __init__(self, server: "Server", pool: str, user: str) -> None:
        self.server = server
        self.pool = pool
        self.user = user
        self.session_id = next(_SESSION_IDS)
        self.statements = 0
        self._closed = False

    def execute(self, sql: str) -> "ResultSet":
        """Run one statement through the pool this session is bound to."""
        if self._closed:
            raise ServingError(f"session {self.session_id} is closed")
        result = self.server._execute(self, sql)
        self.statements += 1
        return result

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.server._session_closed(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Server:
    """Thread-pool serving layer over one :class:`VerticaCluster`."""

    def __init__(
        self,
        cluster: "VerticaCluster",
        pools: list[PoolConfig] | None = None,
        resource_manager: "ResourceManager | None" = None,
        plan_cache_size: int = 256,
        result_cache_bytes: int = 64 * 1024 * 1024,
        result_cache_entries: int = 512,
    ) -> None:
        self.cluster = cluster
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_bytes, result_cache_entries)
        self.resource_manager = resource_manager
        self._lock = threading.Lock()
        self._closed = False
        self._active_sessions = 0
        self._pools: dict[str, ResourcePool] = {}
        self._applications: list["Application"] = []
        configs = pools if pools is not None else [PoolConfig("general")]
        if not configs:
            raise ServingError("server requires at least one resource pool")
        for config in configs:
            if config.name in self._pools:
                raise ServingError(f"duplicate pool name {config.name!r}")
            if (resource_manager is not None
                    and config.memory_budget_bytes is not None):
                # Reserve the pool's budget through the shared broker; an
                # unsatisfiable budget fails server construction instead of
                # silently overcommitting the cluster.
                with cluster.tracer.span(
                        "yarn.allocate", pool_budget=config.memory_budget_bytes):
                    app = resource_manager.submit_application(
                        f"serving.{config.name}",
                        [{"cores": 1, "memory_bytes": config.memory_budget_bytes}],
                        require_all=True,
                    )
                self._applications.append(app)
            self._pools[config.name] = ResourcePool(config, cluster.telemetry)

    # -- sessions ---------------------------------------------------------

    def session(self, pool: str = "general", user: str = "dbadmin") -> Session:
        """Open a session bound to ``pool`` (a context manager)."""
        with self._lock:
            if self._closed:
                raise ServingError("server is closed")
            if pool not in self._pools:
                raise ServingError(
                    f"unknown pool {pool!r}; pools: {sorted(self._pools)}")
            self._active_sessions += 1
        session = Session(self, pool, user)
        self.cluster.telemetry.gauge_add("sessions_active", 1)
        with self.cluster.tracer.span(
                "serve.session", session=session.session_id):
            # A marker span: session open is cheap, but the span records
            # the session id so admit/execute trees can be joined to it.
            pass
        return session

    def _session_closed(self, session: Session) -> None:
        with self._lock:
            self._active_sessions -= 1
        self.cluster.telemetry.gauge_add("sessions_active", -1)

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return self._active_sessions

    def pool(self, name: str) -> ResourcePool:
        with self._lock:
            try:
                return self._pools[name]
            except KeyError:
                raise ServingError(f"unknown pool {name!r}") from None

    # -- statement flow ---------------------------------------------------

    def _execute(self, session: Session, sql: str) -> "ResultSet":
        cluster = self.cluster
        prepared = self.plan_cache.prepare(cluster, sql)
        cacheable = is_cacheable(cluster, prepared.statement)
        key_pre: tuple | None = None
        if cacheable:
            key_pre = result_cache_key(cluster, prepared, session.user)
            cached = self.result_cache.lookup(key_pre)
            if cached is not None:
                cluster.telemetry.add("result_cache_hits")
                cluster.telemetry.add("statements_served")
                return cached
            cluster.telemetry.add("result_cache_misses")
        result = self._admit_and_run(session, prepared)
        if cacheable:
            # Store-guard: only cache when no mutation landed between the
            # pre-execution key read and now — otherwise the result may
            # reflect a state in between the two keys.
            key_post = result_cache_key(cluster, prepared, session.user)
            if key_post == key_pre:
                self.result_cache.store(key_post, result)
        cluster.telemetry.add("statements_served")
        return result

    def _admit_and_run(self, session: Session,
                       prepared: PreparedStatement) -> "ResultSet":
        cluster = self.cluster
        pool = self.pool(session.pool)
        with cluster.tracer.span(
                "serve.admit", pool_queue_depth=pool.config.queue_depth,
                session=session.session_id) as admit_span:

            def run() -> "ResultSet":
                with cluster.tracer.span(
                        "serve.execute", parent=admit_span,
                        session=session.session_id) as span:
                    if cluster.faults is not None:
                        cluster.faults.perturb(
                            "serving.admit", pool=pool.config.name,
                            session=session.session_id)
                    start = time.perf_counter()
                    with cluster.tracer.span(
                            "query", parent=span,
                            statement=prepared.sql[:200]) as query_span:
                        cluster.telemetry.add("queries_executed")
                        result = cluster.executor.execute(
                            prepared.statement_copy(), user=session.user,
                            resolved=prepared.resolved)
                        query_span.set(result_rows=len(result))
                    cluster.telemetry.registry.histogram(
                        "query_seconds").observe(time.perf_counter() - start)
                    return result

            ticket = pool.submit(run)
            waited = pool.await_admission(ticket)
            admit_span.set(queue_seconds=waited)
        return ticket.future.result()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drain the pools and release YARN reservations (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pools = list(self._pools.values())
            applications = list(self._applications)
            self._applications.clear()
        for pool in pools:
            pool.close(wait=True)
        if self.resource_manager is not None:
            for app in applications:
                with self.cluster.tracer.span("yarn.release"):
                    self.resource_manager.release_application(app)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
