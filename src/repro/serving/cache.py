"""Prepared-statement plan cache and epoch-keyed result cache.

**Plan cache.**  Keyed on whitespace-normalized SQL text: the first
execution parses and semantically analyzes the statement; later executions
reuse the AST and the :class:`~repro.vertica.sql.analyzer.ResolvedQuery`
and skip both phases.  Entries remember the catalog's DDL version at
analysis time — a CREATE/DROP TABLE or UDTF registration invalidates every
prepared plan, because the analysis may be bound to stale schema.  The
executor mutates statements while running them (alias resolution, join
predicate consumption), so callers must execute a **deep copy** of the
cached AST, never the cached object itself
(:meth:`PreparedStatement.statement_copy`).

**Result cache.**  Keyed on ``(plan fingerprint, user, referenced-table
invalidation tokens, model-catalog version)``.  A table's invalidation
token (:meth:`~repro.vertica.table.Table.invalidation_token`) changes on
every committed INSERT/DELETE/UPDATE and on every Tuple Mover purge, and
mutators bump it *before* the epoch clock publishes the commit — so a
lookup whose key still matches is guaranteed to observe a table state
bit-identical to the one the entry was stored under.  Storing uses a
read-twice guard: the key is computed before execution and again after,
and the entry is stored only if the two agree (a mutation that lands
mid-execution simply makes the result uncacheable).

Only plain ``SELECT`` statements are cacheable; ``AT EPOCH`` queries
bypass the cache entirely (they name their own snapshot — the latest-state
token key does not describe them), and UDTF calls are cacheable only when
the registered function declares ``cacheable = True``
(``ExportToDistributedR`` does not: replaying its summary rows would skip
the actual transfer).
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.vertica.executor import ResultSet
from repro.vertica.models import R_MODELS_TABLE_NAME
from repro.vertica.sql import ast
from repro.vertica.sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster
    from repro.vertica.sql.analyzer import ResolvedQuery

__all__ = [
    "PlanCache",
    "PreparedStatement",
    "ResultCache",
    "is_cacheable",
    "result_cache_key",
]


def _strip_comments(sql: str) -> str:
    """Remove ``--`` line comments without touching string literals.

    A ``--`` inside a single-quoted literal is data, not a comment, so the
    scan tracks quoting (with ``''`` escapes handled naturally: each quote
    toggles the state and both characters are kept)."""
    out: list[str] = []
    i = 0
    n = len(sql)
    in_string = False
    while i < n:
        ch = sql[i]
        if ch == "'":
            in_string = not in_string
            out.append(ch)
            i += 1
            continue
        if not in_string and sql.startswith("--", i):
            end = sql.find("\n", i)
            if end == -1:
                break
            i = end  # keep the newline: it separates surrounding tokens
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def normalize_sql(sql: str) -> str:
    """Collapse whitespace and strip ``--`` comments so trivially
    reformatted or re-commented statements share one plan-cache entry."""
    return " ".join(_strip_comments(sql).split())


@dataclass(frozen=True)
class PreparedStatement:
    """One analyzed statement, shared by every session that runs its text."""

    sql: str
    fingerprint: str
    statement: ast.Statement = field(compare=False)
    resolved: "ResolvedQuery" = field(compare=False)
    ddl_version: int = field(compare=False)

    def statement_copy(self) -> ast.Statement:
        """A private AST for one execution (the executor mutates its input)."""
        return copy.deepcopy(self.statement)


class PlanCache:
    """LRU cache of :class:`PreparedStatement` keyed on normalized SQL."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PreparedStatement]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def prepare(self, cluster: "VerticaCluster", sql: str) -> PreparedStatement:
        """The prepared form of ``sql``, analyzing at most once per text.

        Entries analyzed under an older catalog DDL version are discarded
        and re-analyzed, so schema changes can never serve a plan bound to
        a dropped table or a stale UDTF signature.
        """
        norm = normalize_sql(sql)
        ddl = cluster.catalog.ddl_version()
        with self._lock:
            entry = self._entries.get(norm)
            if entry is not None and entry.ddl_version == ddl:
                self._entries.move_to_end(norm)
            elif entry is not None:
                del self._entries[norm]
                entry = None
        if entry is not None:
            cluster.telemetry.add("plan_cache_hits")
            return entry
        # Parse + analyze outside the cache lock: analysis reads catalog
        # state and may install standard functions.
        statement = parse(norm)
        resolved = cluster.executor.analyze(statement)
        entry = PreparedStatement(
            sql=norm,
            fingerprint=hashlib.sha256(norm.encode()).hexdigest()[:16],
            statement=statement,
            resolved=resolved,
            ddl_version=ddl,
        )
        with self._lock:
            self._entries[norm] = entry
            self._entries.move_to_end(norm)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        cluster.telemetry.add("plan_cache_misses")
        return entry


def _referenced_tables(statement: ast.Select) -> list[str]:
    names = []
    if statement.table is not None:
        names.append(statement.table)
    if statement.join is not None:
        names.append(statement.join.table)
    return names


def is_cacheable(cluster: "VerticaCluster", statement: ast.Statement) -> bool:
    """Whether ``statement``'s result may be served from the result cache."""
    if not isinstance(statement, ast.Select):
        return False
    if statement.at_epoch is not None:
        # AT EPOCH names its own snapshot; the latest-state token key does
        # not describe what it reads (and mergeout purges rewrite exactly
        # the history it depends on).
        return False
    if statement.udtf is not None:
        if not cluster.catalog.has_udtf(statement.udtf.name):
            return False
        if not cluster.catalog.get_udtf(statement.udtf.name).cacheable:
            return False
    return True


def result_cache_key(
    cluster: "VerticaCluster",
    prepared: PreparedStatement,
    user: str,
) -> tuple:
    """The epoch-keyed cache key for one execution of ``prepared``.

    Combines the plan fingerprint and user with the invalidation token of
    every referenced table, plus the model-catalog version for statements
    that read ``R_Models`` or call a transform function (predictors load
    models by name; a redeploy under the same name must miss).

    ``WITHIN`` queries additionally key on the AQP-catalog version and the
    invalidation tokens of every sample stored on the referenced table: a
    CREATE/DROP SAMPLE or a refresh fold changes which sample answers (or
    whether the query falls back to exact), so a cached approximate result
    must miss.  The base-table token stays in the key too, covering the
    exact-fallback path.
    """
    statement = prepared.statement
    assert isinstance(statement, ast.Select)
    tokens: list[tuple[int, int, int]] = []
    models_version: int | None = None
    aqp_version: int | None = None
    for name in _referenced_tables(statement):
        if name.lower() == R_MODELS_TABLE_NAME.lower():
            models_version = cluster.r_models.version()
        else:
            tokens.append(cluster.catalog.get_table(name).invalidation_token())
    if statement.udtf is not None:
        models_version = cluster.r_models.version()
    if statement.within_error is not None and statement.table is not None:
        aqp_version = cluster.aqp.version()
        for record in cluster.aqp.samples_on(statement.table):
            if cluster.catalog.has_table(record.name):
                tokens.append(
                    cluster.catalog.get_table(record.name).invalidation_token())
    return (prepared.fingerprint, user, tuple(tokens), models_version,
            aqp_version)


def _result_nbytes(result: ResultSet) -> int:
    return sum(arr.nbytes for arr in result.as_arrays().values())


def _copy_result(result: ResultSet) -> ResultSet:
    return ResultSet(
        result.column_names,
        {name: arr.copy() for name, arr in result.as_arrays().items()},
    )


class ResultCache:
    """Bounded LRU of materialized SELECT results, epoch-token keyed.

    Every stored and served result is a private copy, so callers can never
    corrupt a cached entry (or each other) by mutating returned arrays.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 max_entries: int = 512) -> None:
        if max_bytes < 1 or max_entries < 1:
            raise ValueError("result cache bounds must be >= 1")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, ResultSet]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def lookup(self, key: tuple) -> ResultSet | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
        return _copy_result(entry)

    def store(self, key: tuple, result: ResultSet) -> None:
        """Insert a copy of ``result``; oversize results are not cached."""
        nbytes = _result_nbytes(result)
        if nbytes > self.max_bytes:
            return
        entry = _copy_result(result)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= _result_nbytes(old)
            self._entries[key] = entry
            self._bytes += nbytes
            while (self._bytes > self.max_bytes
                   or len(self._entries) > self.max_entries):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= _result_nbytes(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
