"""Measurement helpers for simulations.

:class:`Monitor` records ``(time, value)`` observations and computes
time-weighted statistics — used by the performance model to report resource
utilisation and queue lengths (e.g. how deep the ODBC connection queue gets).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simkit.core import Environment

__all__ = ["Monitor"]


class Monitor:
    """Records a piecewise-constant time series of observations."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record ``value`` at the current simulation time."""
        now = self.env.now
        if self._times and now < self._times[-1]:
            raise SimulationError("observations must be recorded in time order")
        self._times.append(now)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def observations(self) -> list[tuple[float, float]]:
        return list(zip(self._times, self._values))

    def last(self) -> float:
        if not self._values:
            raise SimulationError(f"monitor {self.name!r} has no observations")
        return self._values[-1]

    def maximum(self) -> float:
        if not self._values:
            raise SimulationError(f"monitor {self.name!r} has no observations")
        return max(self._values)

    def minimum(self) -> float:
        if not self._values:
            raise SimulationError(f"monitor {self.name!r} has no observations")
        return min(self._values)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted mean, treating the series as piecewise constant."""
        if not self._values:
            raise SimulationError(f"monitor {self.name!r} has no observations")
        end = self.env.now if until is None else float(until)
        if end < self._times[0]:
            raise SimulationError("time_average end precedes the first observation")
        total = 0.0
        for i, value in enumerate(self._values):
            start = self._times[i]
            stop = self._times[i + 1] if i + 1 < len(self._times) else end
            stop = min(stop, end)
            if stop > start:
                total += value * (stop - start)
        span = end - self._times[0]
        if span <= 0:
            return self._values[-1]
        return total / span
