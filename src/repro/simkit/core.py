"""A small discrete-event simulation kernel.

The performance-model layer (:mod:`repro.perfmodel`) replays the paper's
experiments at paper scale.  It needs processes that wait on timeouts, queue
on bounded resources, and synchronize on each other — the classic simpy
programming model.  This module implements that model from scratch: an
:class:`Environment` drives a priority queue of events, and processes are
plain Python generators that ``yield`` the events they wait for.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return "done at %g" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 5'
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled with a value), and *processed* (callbacks ran).  Waiting
    processes register callbacks; when the environment pops the event off the
    queue it invokes them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before it was triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._unfired = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._check(event)
            else:
                if event.callbacks is None:
                    self._check(event)
                else:
                    event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._triggered}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every component event has fired (fails fast on failure)."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._unfired -= 1
        if self._unfired == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any component event fires."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Process(Event):
    """Wraps a generator so it can run inside the environment.

    The process itself is an event: it triggers when the generator returns
    (value = the generator's return value) or raises.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        event = Event(self.env)
        event._interrupt_cause = cause  # type: ignore[attr-defined]
        event.callbacks.append(self._resume)
        event.succeed()

    def _resume(self, event: Event) -> None:
        # Detach from the event we were waiting on if this is an interrupt.
        interrupt_cause = getattr(event, "_interrupt_cause", _NO_INTERRUPT)
        if interrupt_cause is not _NO_INTERRUPT:
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
        self.env._active_process = self
        try:
            if interrupt_cause is not _NO_INTERRUPT:
                target = self._generator.throw(Interrupt(interrupt_cause))
            elif event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            self.succeed(None)
            return
        except BaseException as exc:
            if self.callbacks:
                self.fail(exc)
                return
            raise
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield events"
            )
        if target.env is not self.env:
            raise SimulationError("process yielded an event from another environment")
        self._target = target
        if target.callbacks is None:
            # Already processed: resume on the next scheduling round.
            resume_now = Event(self.env)
            resume_now._ok = target._ok
            resume_now._value = target._value
            resume_now.callbacks.append(self._resume)
            resume_now._triggered = True
            self.env._schedule(resume_now)
        else:
            target.callbacks.append(self._resume)


_NO_INTERRUPT = object()


class Environment:
    """Execution environment: the event queue and the simulation clock."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks or ():
            callback(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (absolute
        simulation time), or an :class:`Event` (run until it is processed and
        return its value).
        """
        stop_event: Event | None = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("run(until=...) deadline is in the past")
        while self._queue:
            if stop_event is not None and stop_event._processed:
                break
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()
        if stop_event is not None:
            if not stop_event._triggered:
                raise SimulationError(
                    "run() finished but the awaited event never triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf"):
            self._now = deadline
        return None
