"""Discrete-event simulation kernel used by :mod:`repro.perfmodel`.

A self-contained, simpy-like DES: generator processes, timeouts, bounded
resources, containers, stores, and monitors.
"""

from repro.simkit.core import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from repro.simkit.monitor import Monitor
from repro.simkit.resources import Container, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Container",
    "Store",
    "Monitor",
]
