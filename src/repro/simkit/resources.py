"""Shared resources for the simulation kernel.

Three primitives, mirroring the classic DES toolbox:

* :class:`Resource` — a bounded pool of identical slots with a FIFO wait
  queue.  This is what models "the database has N concurrent scan slots" —
  the mechanism behind ODBC connection storms overwhelming Vertica.
* :class:`Container` — a continuous quantity (e.g. memory bytes) with
  blocking ``get``/``put``.
* :class:`Store` — a FIFO buffer of Python objects with bounded capacity,
  used to model network streams between database nodes and workers.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.simkit.core import Environment, Event

__all__ = ["Resource", "Container", "Store"]


class _Request(Event):
    """Event returned by :meth:`Resource.request`; fires on acquisition."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A pool of ``capacity`` identical slots with FIFO queuing.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: set[_Request] = set()
        self._waiting: deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Ask for one slot; the returned event fires when it is granted."""
        req = _Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiting:
            self._waiting.remove(request)
            return
        else:
            raise SimulationError("release() of a request this resource never granted")
        if self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level must lie within [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow the capacity."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.env)
        self._putters.append((event, float(amount)))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.env)
        self._getters.append((event, float(amount)))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO buffer of items with bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    @property
    def items(self) -> list[Any]:
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Append ``item``; blocks while the store is full."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item; blocks while the store is empty."""
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self._items) < self.capacity:
                event, item = self._putters.popleft()
                self._items.append(item)
                event.succeed()
                progressed = True
            if self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._items.popleft())
                progressed = True
