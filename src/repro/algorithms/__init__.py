"""Distributed machine learning on Distributed R data structures: the
HPdregression / HPdcluster / HPdclassifier analogs."""

from repro.algorithms.cv import CrossValidationResult, cv_hpdglm
from repro.algorithms.families import Family, binomial, family_by_name, gaussian, poisson
from repro.algorithms.fold import LocalArray, PartitionFold, SgdFold, fold_fit, sgd_fit
from repro.algorithms.glm import GlmModel, hpdglm
from repro.algorithms.kmeans import KMeansModel, assign_to_centers, hpdkmeans
from repro.algorithms.mf import MfModel, hpdmf
from repro.algorithms.metrics import (
    accuracy,
    confusion_matrix,
    log_loss,
    mean_squared_error,
    r_squared,
    root_mean_squared_error,
)
from repro.algorithms.graph import ConnectedComponentsResult, hpdconnectedcomponents
from repro.algorithms.naive_bayes import (
    NaiveBayesModel,
    hpdnaivebayes,
    model_from_moments,
    register_naive_bayes_support,
)
from repro.algorithms.pagerank import PageRankResult, hpdpagerank
from repro.algorithms.svm import SvmModel, hpdsvm
from repro.algorithms.random_forest import (
    DecisionTree,
    RandomForestModel,
    hpdrandomforest,
    train_tree,
)

__all__ = [
    "PartitionFold",
    "SgdFold",
    "fold_fit",
    "sgd_fit",
    "LocalArray",
    "hpdglm",
    "GlmModel",
    "cv_hpdglm",
    "CrossValidationResult",
    "hpdkmeans",
    "KMeansModel",
    "assign_to_centers",
    "hpdsvm",
    "SvmModel",
    "hpdmf",
    "MfModel",
    "hpdrandomforest",
    "RandomForestModel",
    "DecisionTree",
    "train_tree",
    "hpdpagerank",
    "PageRankResult",
    "hpdconnectedcomponents",
    "ConnectedComponentsResult",
    "hpdnaivebayes",
    "NaiveBayesModel",
    "model_from_moments",
    "register_naive_bayes_support",
    "Family",
    "gaussian",
    "binomial",
    "poisson",
    "family_by_name",
    "mean_squared_error",
    "root_mean_squared_error",
    "r_squared",
    "accuracy",
    "log_loss",
    "confusion_matrix",
]
