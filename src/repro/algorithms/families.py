"""GLM families for ``hpdglm``: gaussian, binomial(logit), poisson(log).

Each family supplies the pieces IRLS/Newton-Raphson needs: the inverse link
(mean function), the derivative of the mean w.r.t. the linear predictor, the
variance function, and the unit deviance.  Figure 3's
``family=binomial(link=logit)`` maps to :func:`binomial`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ModelError

__all__ = ["Family", "gaussian", "binomial", "poisson", "family_by_name"]

_EPS = 1e-10


@dataclass(frozen=True)
class Family:
    """One exponential-family specification with its canonical link."""

    name: str
    link_name: str
    inverse_link: Callable[[np.ndarray], np.ndarray]     # eta -> mu
    mean_derivative: Callable[[np.ndarray], np.ndarray]  # d mu / d eta at eta
    variance: Callable[[np.ndarray], np.ndarray]         # Var(Y | mu)
    deviance: Callable[[np.ndarray, np.ndarray], np.ndarray]  # per-row unit deviance
    initialize: Callable[[np.ndarray], np.ndarray]       # y -> starting mu

    def validate_response(self, y: np.ndarray) -> None:
        if self.name == "binomial" and ((y < 0) | (y > 1)).any():
            raise ModelError("binomial responses must lie in [0, 1]")
        if self.name == "poisson" and (y < 0).any():
            raise ModelError("poisson responses must be non-negative")


def _identity(eta: np.ndarray) -> np.ndarray:
    return eta


def gaussian() -> Family:
    """Linear regression: identity link, constant variance."""
    return Family(
        name="gaussian",
        link_name="identity",
        inverse_link=_identity,
        mean_derivative=lambda eta: np.ones_like(eta),
        variance=lambda mu: np.ones_like(mu),
        deviance=lambda y, mu: (y - mu) ** 2,
        initialize=lambda y: y.astype(np.float64),
    )


def _sigmoid(eta: np.ndarray) -> np.ndarray:
    out = np.empty_like(eta, dtype=np.float64)
    positive = eta >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-eta[positive]))
    exp_eta = np.exp(eta[~positive])
    out[~positive] = exp_eta / (1.0 + exp_eta)
    return out


def _binomial_deviance(y: np.ndarray, mu: np.ndarray) -> np.ndarray:
    mu = np.clip(mu, _EPS, 1.0 - _EPS)
    term1 = np.where(y > 0, y * np.log(np.where(y > 0, y, 1.0) / mu), 0.0)
    term2 = np.where(
        y < 1, (1 - y) * np.log(np.where(y < 1, 1 - y, 1.0) / (1 - mu)), 0.0
    )
    return 2.0 * (term1 + term2)


def binomial() -> Family:
    """Logistic regression: logit link, mu(1-mu) variance."""
    return Family(
        name="binomial",
        link_name="logit",
        inverse_link=_sigmoid,
        mean_derivative=lambda eta: _sigmoid(eta) * (1.0 - _sigmoid(eta)),
        variance=lambda mu: np.clip(mu * (1.0 - mu), _EPS, None),
        deviance=_binomial_deviance,
        initialize=lambda y: (y.astype(np.float64) + 0.5) / 2.0,
    )


def _poisson_deviance(y: np.ndarray, mu: np.ndarray) -> np.ndarray:
    mu = np.clip(mu, _EPS, None)
    term = np.where(y > 0, y * np.log(np.where(y > 0, y, 1.0) / mu), 0.0)
    return 2.0 * (term - (y - mu))


def poisson() -> Family:
    """Poisson regression: log link, variance equal to the mean."""
    return Family(
        name="poisson",
        link_name="log",
        inverse_link=lambda eta: np.exp(np.clip(eta, -700, 700)),
        mean_derivative=lambda eta: np.exp(np.clip(eta, -700, 700)),
        variance=lambda mu: np.clip(mu, _EPS, None),
        deviance=_poisson_deviance,
        initialize=lambda y: y.astype(np.float64) + 0.1,
    )


_FAMILIES = {"gaussian": gaussian, "binomial": binomial, "poisson": poisson}


def family_by_name(name: str) -> Family:
    """Resolve a family by name (``gaussian``, ``binomial``, ``poisson``)."""
    try:
        return _FAMILIES[name.lower()]()
    except KeyError:
        raise ModelError(
            f"unknown GLM family {name!r}; choose from {sorted(_FAMILIES)}"
        ) from None
