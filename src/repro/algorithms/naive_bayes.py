"""``hpdnaivebayes``: distributed Gaussian naive Bayes.

A one-pass classifier: each partition computes per-class counts, sums, and
sums of squares; the master combines them into class priors and per-feature
Gaussian parameters.  It doubles as the reference *custom model* for the §5
extension point — :func:`register_naive_bayes_support` registers its codec
and prediction UDF through the same public APIs a user would call.

The single pass is a one-iteration :class:`~repro.algorithms.fold.
PartitionFold` (:class:`_NaiveBayesFold`) under the shared
:func:`~repro.algorithms.fold.fold_fit` driver, and the fitted model keeps
its additive ``(counts, sums, squares)`` sufficient statistics so
``REFRESH MODEL`` can fold new epochs in exactly (the variance floor makes
the fitted parameters themselves non-invertible back to the sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.fold import fold_fit
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["NaiveBayesModel", "hpdnaivebayes", "model_from_moments",
           "register_naive_bayes_support"]

_VARIANCE_FLOOR = 1e-9


@dataclass
class NaiveBayesModel:
    """Class priors plus per-class Gaussian feature parameters."""

    class_log_priors: np.ndarray   # (k,)
    means: np.ndarray              # (k, d)
    variances: np.ndarray          # (k, d)
    n_observations: int
    # Additive sufficient statistics ({"counts", "sums", "squares"}); kept so
    # incremental refresh can extend the fit without the original rows.
    sufficient_stats: dict | None = field(default=None, repr=False, compare=False)

    model_type = "naivebayes"

    @property
    def n_classes(self) -> int:
        return len(self.class_log_priors)

    @property
    def n_features(self) -> int:
        return self.means.shape[1]

    def log_likelihood(self, features: np.ndarray) -> np.ndarray:
        """(n, k) joint log-likelihoods."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[1] != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {features.shape[1]}"
            )
        # log N(x | mu, sigma^2) summed over features, per class.
        diff = features[:, None, :] - self.means[None, :, :]
        log_pdf = -0.5 * (
            np.log(2.0 * np.pi * self.variances)[None, :, :]
            + diff * diff / self.variances[None, :, :]
        )
        return self.class_log_priors[None, :] + log_pdf.sum(axis=2)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return np.argmax(self.log_likelihood(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized posterior probabilities (n, k)."""
        joint = self.log_likelihood(features)
        joint -= joint.max(axis=1, keepdims=True)
        likelihood = np.exp(joint)
        return likelihood / likelihood.sum(axis=1, keepdims=True)


class _NaiveBayesFold:
    """The one-pass moment collection in the partition-fold contract."""

    solver = "naivebayes.moments"

    def __init__(self, n_classes: int, d: int) -> None:
        self.n_classes = n_classes
        self.d = d

    def init_state(self):
        return None

    def partial(self, state, index: int, x_part: np.ndarray,
                y_part: np.ndarray):
        """Per-class (counts, sums, sums of squares) of one partition."""
        n_classes, d = self.n_classes, self.d
        x = np.asarray(x_part, dtype=np.float64)
        y = np.asarray(y_part).ravel().astype(np.int64)
        if len(y) and (y.min() < 0 or y.max() >= n_classes):
            raise ModelError(
                f"labels must lie in [0, {n_classes}), found "
                f"[{y.min()}, {y.max()}]"
            )
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        sums = np.zeros((n_classes, d))
        squares = np.zeros((n_classes, d))
        np.add.at(sums, y, x)
        np.add.at(squares, y, x * x)
        return counts, sums, squares

    def merge(self, partials: list):
        counts = np.sum([r[0] for r in partials], axis=0)
        sums = np.sum([r[1] for r in partials], axis=0)
        squares = np.sum([r[2] for r in partials], axis=0)
        return counts, sums, squares

    def step(self, state, merged, iteration: int):
        return merged

    def converged(self, state) -> bool:
        return True


def model_from_moments(counts: np.ndarray, sums: np.ndarray,
                       squares: np.ndarray) -> NaiveBayesModel:
    """Build a :class:`NaiveBayesModel` from additive class moments.

    Shared by the initial fit and by incremental refresh (which adds the
    delta rows' moments to the stored sufficient statistics and re-derives
    the parameters).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if (counts == 0).any():
        empty = np.flatnonzero(counts == 0).tolist()
        raise ModelError(f"classes {empty} have no training rows")
    means = sums / counts[:, None]
    variances = np.maximum(
        squares / counts[:, None] - means * means, _VARIANCE_FLOOR)
    return NaiveBayesModel(
        class_log_priors=np.log(counts / total),
        means=means,
        variances=variances,
        n_observations=int(total),
        sufficient_stats={"counts": counts, "sums": sums, "squares": squares},
    )


def hpdnaivebayes(responses: DArray, features: DArray,
                  n_classes: int | None = None) -> NaiveBayesModel:
    """Fit Gaussian naive Bayes in one distributed pass.

    ``responses`` holds integer class labels (0..k-1) co-partitioned with
    ``features``.
    """
    if responses.npartitions != features.npartitions:
        raise ModelError("responses and features must be co-partitioned")
    if n_classes is None:
        maxima = responses.map_partitions(
            lambda i, part: int(np.max(part)) if len(part) else -1)
        n_classes = max(maxima) + 1
    if n_classes < 2:
        raise ModelError(f"need at least 2 classes, inferred {n_classes}")

    fold = _NaiveBayesFold(n_classes, features.ncol)
    counts, sums, squares = fold_fit(features, fold, responses)
    return model_from_moments(counts, sums, squares)


def register_naive_bayes_support(cluster) -> None:
    """Register the codec and the ``nbPredict`` UDF on a cluster.

    This goes through exactly the public extension points §5 describes for
    custom models: :func:`repro.deploy.register_model_codec` and
    :func:`repro.deploy.make_prediction_function`.
    """
    from repro.deploy import make_prediction_function, register_model_codec
    from repro.deploy.serialize import pack_sufficient_stats, unpack_sufficient_stats
    from repro.storage.encoding import SqlType

    def to_state(m: NaiveBayesModel):
        metadata = {"n_observations": m.n_observations}
        arrays = {"log_priors": m.class_log_priors, "means": m.means,
                  "variances": m.variances}
        pack_sufficient_stats(arrays, metadata, m.sufficient_stats)
        return metadata, arrays

    def from_state(meta, arrays):
        return NaiveBayesModel(
            class_log_priors=arrays["log_priors"],
            means=arrays["means"],
            variances=arrays["variances"],
            n_observations=meta["n_observations"],
            sufficient_stats=unpack_sufficient_stats(meta, arrays),
        )

    register_model_codec("naivebayes", NaiveBayesModel, to_state, from_state)
    cluster.register_udtf(
        make_prediction_function(
            "nbPredict", "naivebayes",
            lambda model, feats, params: model.predict(feats).astype(np.int64),
            output_column="label",
            output_sql_type=SqlType.INTEGER,
        ),
        replace=True,
    )
