"""``hpdpagerank``: distributed PageRank over an edge-partitioned graph.

The paper notes that Distributed R open-sourced "different clustering,
classification, and graph algorithms" (§7.3.1); PageRank is the canonical
graph member of that family.  Edges live in a darray of ``(source, target)``
pairs partitioned by rows; each power iteration is one data-parallel pass
that scatters rank mass along local edges, and the master handles dangling
nodes and the damping mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dr.darray import DArray
from repro.errors import ConvergenceError, ModelError

__all__ = ["PageRankResult", "hpdpagerank"]


@dataclass
class PageRankResult:
    """Final ranks plus convergence information."""

    ranks: np.ndarray
    iterations: int
    converged: bool
    damping: float

    @property
    def n_nodes(self) -> int:
        return len(self.ranks)

    def top(self, count: int = 10) -> list[tuple[int, float]]:
        order = np.argsort(self.ranks)[::-1][:count]
        return [(int(node), float(self.ranks[node])) for node in order]


def hpdpagerank(
    edges: DArray,
    n_nodes: int | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    fail_on_no_convergence: bool = False,
) -> PageRankResult:
    """Compute PageRank from a distributed (source, target) edge list."""
    if not 0 < damping < 1:
        raise ModelError(f"damping must be in (0, 1), got {damping}")
    if edges.ncol != 2:
        raise ModelError(f"edge darray must have 2 columns, has {edges.ncol}")

    if n_nodes is None:
        maxima = edges.map_partitions(
            lambda i, part: int(np.max(part)) if len(part) else -1
        )
        n_nodes = max(maxima) + 1
    if n_nodes < 1:
        raise ModelError("graph has no nodes")

    # Out-degrees: one distributed pass.
    degree_partials = edges.map_partitions(
        lambda i, part: np.bincount(
            np.asarray(part)[:, 0].astype(np.int64), minlength=n_nodes
        )
    )
    out_degree = np.sum(degree_partials, axis=0).astype(np.float64)
    dangling = out_degree == 0

    ranks = np.full(n_nodes, 1.0 / n_nodes)
    converged = False
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        contribution = np.where(dangling, 0.0, ranks / np.clip(out_degree, 1.0, None))

        def scatter(index: int, part: np.ndarray):
            edges_local = np.asarray(part).astype(np.int64)
            incoming = np.zeros(n_nodes)
            if len(edges_local):
                np.add.at(incoming, edges_local[:, 1], contribution[edges_local[:, 0]])
            return incoming

        incoming_partials = edges.map_partitions(scatter)
        incoming = np.sum(incoming_partials, axis=0)
        dangling_mass = float(ranks[dangling].sum()) / n_nodes
        new_ranks = (1.0 - damping) / n_nodes + damping * (incoming + dangling_mass)
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta < tolerance:
            converged = True
            break

    if not converged and fail_on_no_convergence:
        raise ConvergenceError(
            f"PageRank did not converge in {max_iterations} iterations"
        )
    return PageRankResult(
        ranks=ranks, iterations=iterations, converged=converged, damping=damping
    )
