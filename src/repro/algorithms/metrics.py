"""Model-quality metrics shared by the algorithms, CV, and the benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "r_squared",
    "accuracy",
    "log_loss",
    "confusion_matrix",
    "silhouette_sample",
]


def _check_lengths(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ModelError(f"length mismatch: {a.shape} vs {b.shape}")
    if len(a) == 0:
        raise ModelError("metrics require at least one observation")
    return a, b


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check_lengths(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 - SSE/SST)."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    sse = float(np.sum((y_true - y_pred) ** 2))
    sst = float(np.sum((y_true - y_true.mean()) ** 2))
    if sst == 0:
        return 1.0 if sse == 0 else 0.0
    return 1.0 - sse / sst


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ModelError(f"length mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ModelError("metrics require at least one observation")
    return float(np.mean(y_true == y_pred))


def log_loss(y_true: np.ndarray, probabilities: np.ndarray,
             eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted probabilities."""
    y_true, probabilities = _check_lengths(y_true, probabilities)
    p = np.clip(probabilities, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     labels: list | None = None) -> tuple[np.ndarray, list]:
    """(matrix, labels): matrix[i, j] counts true label i predicted as j."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ModelError(f"length mismatch: {y_true.shape} vs {y_pred.shape}")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for truth, prediction in zip(y_true, y_pred):
        matrix[index[truth], index[prediction]] += 1
    return matrix, labels


def silhouette_sample(points: np.ndarray, labels: np.ndarray,
                      sample: int = 1000, seed: int = 0) -> float:
    """Mean silhouette coefficient over a random sample of points."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels).ravel()
    if len(points) != len(labels):
        raise ModelError("points and labels must align")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ModelError("silhouette requires at least two clusters")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(points), size=min(sample, len(points)), replace=False)
    scores = []
    for i in chosen:
        distances = np.linalg.norm(points - points[i], axis=1)
        own = labels == labels[i]
        own_count = own.sum() - 1
        if own_count == 0:
            continue
        a = distances[own].sum() / own_count
        b = min(
            distances[labels == other].mean()
            for other in unique if other != labels[i]
        )
        scores.append((b - a) / max(a, b) if max(a, b) > 0 else 0.0)
    if not scores:
        raise ModelError("silhouette sample produced no valid points")
    return float(np.mean(scores))
