"""The unified partition-fold solver kernel.

Every distributed solver in this package has the same shape — the
user-defined-aggregate contract of Bismarck ("Towards a Unified
Architecture for in-RDBMS Analytics") and MADlib: the master broadcasts
the current state, every partition computes a *partial* from its local
rows, the master *merges* the partials and takes a *step*, repeating
until *converged*.  :class:`PartitionFold` names that contract once and
:func:`fold_fit` executes it once, so DR fan-out, tracing spans, and
fault-site registration live in exactly one place instead of being
hand-rolled per algorithm (GLM/Newton, K-means/Lloyd, naive Bayes all
run through here).

A second driver, :func:`sgd_fit`, executes :class:`SgdFold` problems —
mini-batch stochastic gradient descent where each partition is one
mini-batch, visited in a *shuffle-once* order (Bismarck's trick: shuffle
the visit order a single time up front instead of re-shuffling every
epoch, which keeps runs deterministic and data in place).  Linear SVM
and low-rank matrix factorization train through it.

:class:`LocalArray` is the smallest object satisfying the drivers' data
contract: a plain in-process numpy array split into partitions.  It is
what ``REFRESH MODEL`` uses to re-fit warm-started models master-side,
and what the documentation examples run on without starting a session.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ModelError, PartitionError

__all__ = ["PartitionFold", "SgdFold", "fold_fit", "sgd_fit", "LocalArray"]

#: The fault-injection site the solver drivers perturb once per
#: synchronized iteration / SGD epoch (master-side failure between
#: fan-outs).  Registered in :data:`repro.faults.sites.FAULT_SITES`.
FOLD_STEP_SITE = "ml.fold.step"


@runtime_checkable
class PartitionFold(Protocol):
    """The synchronized partition-fold contract :func:`fold_fit` drives.

    ``solver`` is a short name recorded on the ``ml.fold`` span.  One
    iteration is: broadcast ``state``, evaluate :meth:`partial` on every
    partition, :meth:`merge` the partials master-side, :meth:`step` to
    the next state, stop when :meth:`converged`.
    """

    solver: str

    def init_state(self) -> Any:
        """The state broadcast before the first iteration."""

    def partial(self, state: Any, index: int, partition: np.ndarray,
                *others: np.ndarray) -> Any:
        """One partition's contribution at the current state."""

    def merge(self, partials: list) -> Any:
        """Combine per-partition contributions master-side."""

    def step(self, state: Any, merged: Any, iteration: int) -> Any:
        """Advance the state by one solver step; returns the new state."""

    def converged(self, state: Any) -> bool:
        """Whether the driver should stop after this step."""


@runtime_checkable
class SgdFold(Protocol):
    """The mini-batch SGD contract :func:`sgd_fit` drives.

    Each partition is one mini-batch; :meth:`gradient` is evaluated at
    the current state on a single batch and :meth:`apply` folds it in
    immediately (sequential updates — the point of SGD).  ``epoch_end``
    runs once per sweep, which is where learning-rate schedules and
    convergence probes live.
    """

    solver: str

    def init_state(self) -> Any:
        """The state before the first mini-batch update."""

    def gradient(self, state: Any, index: int, partition: np.ndarray,
                 *others: np.ndarray) -> Any:
        """The (sub)gradient of one mini-batch at the current state."""

    def apply(self, state: Any, gradient: Any, step_index: int) -> Any:
        """Fold one mini-batch gradient into the state."""

    def epoch_end(self, state: Any, epoch: int) -> Any:
        """Per-sweep hook (schedules, convergence bookkeeping)."""

    def converged(self, state: Any) -> bool:
        """Whether the driver should stop after this epoch."""


def _span(data: Any, name: str, **attrs: Any):
    """A tracer span on the data's session, or a no-op for local arrays."""
    session = getattr(data, "session", None)
    tracer = getattr(session, "tracer", None)
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, **attrs)


def _perturb_step(data: Any, fold: Any, iteration: int) -> None:
    """Fire the per-iteration fault site when a plan is armed."""
    session = getattr(data, "session", None)
    faults = getattr(session, "faults", None)
    if faults is not None:
        faults.perturb(FOLD_STEP_SITE, solver=fold.solver,
                       iteration=iteration)


def fold_fit(data: Any, fold: PartitionFold, *others: Any,
             max_iterations: int = 1) -> Any:
    """Run a :class:`PartitionFold` to convergence and return its state.

    ``data`` is the partitioned input (a :class:`~repro.dr.darray.DArray`
    or a :class:`LocalArray`); ``others`` are co-partitioned companions
    (e.g. the response vector) forwarded to :meth:`PartitionFold.partial`
    exactly as :meth:`map_partitions` forwards them.  The driver owns the
    fan-out, the convergence loop, the ``ml.fold`` / ``ml.fold.step``
    spans, and the ``ml.fold.step`` fault site — solvers own only the
    math.
    """
    if max_iterations < 1:
        raise ModelError("fold_fit requires max_iterations >= 1")
    state = fold.init_state()
    with _span(data, "ml.fold", solver=fold.solver) as solve_span:
        for iteration in range(1, max_iterations + 1):
            with _span(data, "ml.fold.step", solver=fold.solver,
                       iteration=iteration):
                _perturb_step(data, fold, iteration)
                partials = data.map_partitions(
                    lambda index, *parts: fold.partial(state, index, *parts),
                    *others,
                )
                state = fold.step(state, fold.merge(partials), iteration)
            if fold.converged(state):
                break
        if solve_span is not None:
            solve_span.set(iterations=iteration)
    return state


def sgd_fit(data: Any, fold: SgdFold, *others: Any, epochs: int = 1,
            seed: int = 0) -> Any:
    """Run an :class:`SgdFold` for up to ``epochs`` sweeps over the data.

    Mini-batch = partition.  The visit order is drawn **once** from
    ``seed`` (shuffle-once) and reused every epoch, so two runs with the
    same seed apply the exact same update sequence.  Each sweep opens an
    ``ml.sgd.epoch`` span and fires the shared ``ml.fold.step`` fault
    site.
    """
    if epochs < 1:
        raise ModelError("sgd_fit requires epochs >= 1")
    for other in others:
        if other.npartitions != data.npartitions:
            raise ModelError(
                f"sgd_fit companions must be co-partitioned: "
                f"{other.npartitions} vs {data.npartitions} partitions"
            )
    order = np.random.default_rng(seed).permutation(data.npartitions)
    state = fold.init_state()
    step_index = 0
    with _span(data, "ml.fold", solver=fold.solver) as solve_span:
        for epoch in range(1, epochs + 1):
            with _span(data, "ml.sgd.epoch", solver=fold.solver, epoch=epoch):
                _perturb_step(data, fold, epoch)
                for index in order:
                    index = int(index)
                    batch = np.asarray(data.get_partition(index))
                    companions = [np.asarray(other.get_partition(index))
                                  for other in others]
                    gradient = fold.gradient(state, index, batch, *companions)
                    state = fold.apply(state, gradient, step_index)
                    step_index += 1
            state = fold.epoch_end(state, epoch)
            if fold.converged(state):
                break
        if solve_span is not None:
            solve_span.set(iterations=epoch)
    return state


class LocalArray:
    """An in-process, single-machine stand-in for a row-partitioned darray.

    Implements exactly the surface the solvers and fold drivers consume —
    ``npartitions`` / ``nrow`` / ``ncol`` / ``map_partitions`` /
    ``get_partition`` / ``collect`` — over plain numpy storage, with
    ``session = None`` (no tracer, no fault plan, no workers).  Useful
    for master-side re-fits (``REFRESH MODEL``), tests, and docs.
    """

    session = None

    def __init__(self, values: np.ndarray | Sequence,
                 npartitions: int = 1) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        if array.ndim != 2:
            raise PartitionError(
                f"LocalArray holds 2-D data, got ndim={array.ndim}")
        if npartitions < 1:
            raise PartitionError("npartitions must be >= 1")
        boundaries = np.linspace(0, len(array), npartitions + 1).astype(int)
        self._parts = [array[boundaries[i]:boundaries[i + 1]]
                       for i in range(npartitions)]

    @property
    def npartitions(self) -> int:
        return len(self._parts)

    @property
    def nrow(self) -> int:
        return sum(len(part) for part in self._parts)

    @property
    def ncol(self) -> int:
        return self._parts[0].shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrow, self.ncol)

    @property
    def is_filled(self) -> bool:
        return True

    def partition_shapes(self) -> list[tuple[int, int]]:
        return [part.shape for part in self._parts]

    def worker_of(self, partition: int) -> int:
        return 0

    def get_partition(self, partition: int) -> np.ndarray:
        return self._parts[partition]

    def map_partitions(self, fn: Callable, *others: "LocalArray") -> list:
        """``fn(index, partition, *other_partitions)`` per partition,
        sequentially in partition order (same result order as the
        distributed engine's fan-out)."""
        for other in others:
            if other.npartitions != self.npartitions:
                raise PartitionError(
                    f"co-partitioning mismatch: {self.npartitions} vs "
                    f"{other.npartitions} partitions"
                )
        return [
            fn(index, self._parts[index],
               *[other._parts[index] for other in others])
            for index in range(self.npartitions)
        ]

    def collect(self) -> np.ndarray:
        return np.vstack(self._parts)

    def free(self) -> None:
        """No-op (kept for API parity with distributed objects)."""
