"""``hpdmf``: distributed low-rank matrix factorization via mini-batch SGD.

The second family Bismarck's unified architecture makes cheap: factor a
sparse ratings matrix ``R ≈ U·Vᵀ`` by stochastic gradient descent on the
L2-regularized squared error.  Input is the standard sparse triple layout —
an n x 3 array of ``(user, item, rating)`` rows — so the same row-partitioned
darray machinery every other solver uses carries the ratings; each partition
is one mini-batch under the shuffle-once
:func:`~repro.algorithms.fold.sgd_fit` driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.fold import sgd_fit
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["MfModel", "hpdmf"]


@dataclass
class MfModel:
    """A fitted factorization: per-user and per-item latent factors."""

    user_factors: np.ndarray      # (n_users, rank)
    item_factors: np.ndarray      # (n_items, rank)
    rank: int
    regularization: float
    iterations: int               # epochs actually run
    converged: bool
    n_observations: int
    train_rmse: float

    model_type = "mf"

    @property
    def n_users(self) -> int:
        return len(self.user_factors)

    @property
    def n_items(self) -> int:
        return len(self.item_factors)

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        """Predicted ratings for an (n, 2) array of ``(user, item)`` pairs."""
        pairs = np.asarray(pairs)
        if pairs.ndim == 1:
            pairs = pairs.reshape(-1, 2)
        if pairs.shape[1] != 2:
            raise ModelError(
                f"mf prediction input must be (user, item) pairs, "
                f"got {pairs.shape[1]} columns"
            )
        users = pairs[:, 0].astype(np.int64)
        items = pairs[:, 1].astype(np.int64)
        if len(users) and (users.min() < 0 or users.max() >= self.n_users):
            raise ModelError(
                f"user ids must lie in [0, {self.n_users}), found "
                f"[{users.min()}, {users.max()}]"
            )
        if len(items) and (items.min() < 0 or items.max() >= self.n_items):
            raise ModelError(
                f"item ids must lie in [0, {self.n_items}), found "
                f"[{items.min()}, {items.max()}]"
            )
        return np.einsum(
            "ij,ij->i", self.user_factors[users], self.item_factors[items])


@dataclass
class _MfFoldState:
    """Mutable state the factorization SGD threads through ``sgd_fit``."""

    user_factors: np.ndarray
    item_factors: np.ndarray
    rmse: float = np.inf
    iterations: int = 0
    converged: bool = False


class _MfSgdFold:
    """L2-regularized squared error on rating triples, mini-batch SGD."""

    solver = "mf.sgd"

    def __init__(self, data, n_users: int, n_items: int, rank: int,
                 regularization: float, learning_rate: float,
                 tolerance: float, seed: int) -> None:
        self.data = data  # needed by epoch_end for the RMSE probe
        self.n_users = n_users
        self.n_items = n_items
        self.rank = rank
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.tolerance = tolerance
        self.seed = seed

    def init_state(self) -> _MfFoldState:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(self.rank)
        return _MfFoldState(
            user_factors=rng.standard_normal((self.n_users, self.rank)) * scale,
            item_factors=rng.standard_normal((self.n_items, self.rank)) * scale,
        )

    def _split(self, batch: np.ndarray):
        users = batch[:, 0].astype(np.int64)
        items = batch[:, 1].astype(np.int64)
        if len(users) and (users.min() < 0 or users.max() >= self.n_users):
            raise ModelError(
                f"user ids must lie in [0, {self.n_users}), found "
                f"[{users.min()}, {users.max()}]"
            )
        if len(items) and (items.min() < 0 or items.max() >= self.n_items):
            raise ModelError(
                f"item ids must lie in [0, {self.n_items}), found "
                f"[{items.min()}, {items.max()}]"
            )
        return users, items, batch[:, 2].astype(np.float64)

    def gradient(self, state: _MfFoldState, index: int, batch: np.ndarray):
        """Averaged factor gradients of one mini-batch of triples."""
        if len(batch) == 0:
            return None
        users, items, ratings = self._split(batch)
        u_rows = state.user_factors[users]
        v_rows = state.item_factors[items]
        errors = ratings - np.einsum("ij,ij->i", u_rows, v_rows)
        grad_u = np.zeros_like(state.user_factors)
        grad_v = np.zeros_like(state.item_factors)
        np.add.at(grad_u, users, -errors[:, None] * v_rows
                  + self.regularization * u_rows)
        np.add.at(grad_v, items, -errors[:, None] * u_rows
                  + self.regularization * v_rows)
        return grad_u / len(batch), grad_v / len(batch)

    def apply(self, state: _MfFoldState, gradient, step_index: int
              ) -> _MfFoldState:
        if gradient is None:
            return state
        grad_u, grad_v = gradient
        rate = self.learning_rate / (
            1.0 + self.learning_rate * self.regularization * step_index)
        state.user_factors = state.user_factors - rate * grad_u
        state.item_factors = state.item_factors - rate * grad_v
        return state

    def epoch_end(self, state: _MfFoldState, epoch: int) -> _MfFoldState:
        u, v = state.user_factors, state.item_factors

        def squared_error(index: int, part: np.ndarray):
            batch = np.asarray(part, dtype=np.float64)
            if len(batch) == 0:
                return 0.0, 0
            users, items, ratings = self._split(batch)
            errors = ratings - np.einsum("ij,ij->i", u[users], v[items])
            return float(np.sum(errors * errors)), len(batch)

        partials = self.data.map_partitions(squared_error)
        sse = sum(p[0] for p in partials)
        count = sum(p[1] for p in partials)
        new_rmse = float(np.sqrt(sse / count))
        improvement = state.rmse - new_rmse
        state.rmse = new_rmse
        state.iterations = epoch
        if 0.0 <= improvement <= self.tolerance:
            state.converged = True
        return state

    def converged(self, state: _MfFoldState) -> bool:
        return state.converged


def hpdmf(
    ratings: DArray,
    rank: int = 8,
    regularization: float = 0.01,
    epochs: int = 100,
    learning_rate: float = 1.0,
    tolerance: float = 1e-4,
    seed: int = 0,
    n_users: int | None = None,
    n_items: int | None = None,
) -> MfModel:
    """Factor a distributed ``(user, item, rating)`` triple array.

    User and item ids are dense 0-based integers; the id spaces are inferred
    from the data unless ``n_users`` / ``n_items`` pin them (pass them when
    refreshing so ids unseen at first training still fit).  Deterministic
    for a fixed ``seed``: factor initialization and the driver's
    shuffle-once visit order both derive from it.
    """
    if rank < 1:
        raise ModelError("rank must be >= 1")
    if ratings.ncol != 3:
        raise ModelError(
            f"ratings must be (user, item, rating) triples, got "
            f"{ratings.ncol} columns"
        )
    n_total = ratings.nrow
    if n_total == 0:
        raise ModelError("cannot factor zero ratings")
    if n_users is None or n_items is None:
        maxima = ratings.map_partitions(
            lambda i, part: (
                (int(np.max(part[:, 0])), int(np.max(part[:, 1])))
                if len(part) else (-1, -1)
            )
        )
        if n_users is None:
            n_users = max(m[0] for m in maxima) + 1
        if n_items is None:
            n_items = max(m[1] for m in maxima) + 1
    if n_users < 1 or n_items < 1:
        raise ModelError("need at least one user and one item")

    fold = _MfSgdFold(ratings, n_users, n_items, rank, regularization,
                      learning_rate, tolerance, seed)
    state = sgd_fit(ratings, fold, epochs=epochs, seed=seed)
    return MfModel(
        user_factors=state.user_factors,
        item_factors=state.item_factors,
        rank=rank,
        regularization=regularization,
        iterations=state.iterations,
        converged=state.converged,
        n_observations=n_total,
        train_rmse=state.rmse,
    )
