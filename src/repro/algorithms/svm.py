"""``hpdsvm``: distributed linear SVM via mini-batch subgradient descent.

Bismarck's observation ("Towards a Unified Architecture for in-RDBMS
Analytics") is that once the solver loop is a partition fold, adding a new
convex model is just a new gradient: the L2-regularized hinge loss here
trains through the same :func:`~repro.algorithms.fold.sgd_fit` driver the
matrix-factorization family uses — each partition is one mini-batch,
visited in a shuffle-once order so runs are deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.fold import sgd_fit
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["SvmModel", "hpdsvm"]


@dataclass
class SvmModel:
    """A fitted linear SVM: separating hyperplane plus fit statistics."""

    weights: np.ndarray           # (p,)
    bias: float
    regularization: float
    iterations: int               # epochs actually run
    converged: bool
    n_observations: int
    feature_names: list[str] = field(default_factory=list)

    model_type = "svm"

    @property
    def n_features(self) -> int:
        return len(self.weights)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance-like margin ``x·w + b`` per row."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[1] != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {features.shape[1]}"
            )
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 class labels (1 where the margin is non-negative)."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)


@dataclass
class _SvmFoldState:
    """Mutable state the hinge-loss SGD threads through ``sgd_fit``."""

    weights: np.ndarray
    bias: float = 0.0
    iterations: int = 0
    converged: bool = False
    shift: float = np.inf
    _epoch_weights: np.ndarray | None = None
    _epoch_bias: float = 0.0


class _SvmSgdFold:
    """L2-regularized hinge loss in the mini-batch SGD contract."""

    solver = "svm.sgd"

    def __init__(self, p: int, regularization: float, learning_rate: float,
                 tolerance: float) -> None:
        self.p = p
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.tolerance = tolerance

    def init_state(self) -> _SvmFoldState:
        weights = np.zeros(self.p, dtype=np.float64)
        return _SvmFoldState(weights=weights, _epoch_weights=weights.copy())

    def gradient(self, state: _SvmFoldState, index: int, x_part: np.ndarray,
                 y_part: np.ndarray):
        """Averaged hinge subgradient of one mini-batch at the current state."""
        x = np.asarray(x_part, dtype=np.float64)
        if len(x) == 0:
            return np.zeros(self.p), 0.0
        y = _signed_labels(y_part)
        margins = y * (x @ state.weights + state.bias)
        violating = margins < 1.0
        grad_w = self.regularization * state.weights
        grad_b = 0.0
        if violating.any():
            grad_w = grad_w - (x[violating] * y[violating, None]).sum(axis=0) / len(x)
            grad_b = -float(y[violating].sum()) / len(x)
        return grad_w, grad_b

    def apply(self, state: _SvmFoldState, gradient, step_index: int
              ) -> _SvmFoldState:
        grad_w, grad_b = gradient
        # Pegasos-style 1/t decay keyed off the regularization strength.
        rate = self.learning_rate / (
            1.0 + self.learning_rate * self.regularization * step_index)
        state.weights = state.weights - rate * grad_w
        state.bias = state.bias - rate * grad_b
        return state

    def epoch_end(self, state: _SvmFoldState, epoch: int) -> _SvmFoldState:
        state.shift = float(
            np.linalg.norm(state.weights - state._epoch_weights)
            + abs(state.bias - state._epoch_bias)
        )
        state._epoch_weights = state.weights.copy()
        state._epoch_bias = state.bias
        state.iterations = epoch
        if state.shift <= self.tolerance:
            state.converged = True
        return state

    def converged(self, state: _SvmFoldState) -> bool:
        return state.converged


def _signed_labels(y_part: np.ndarray) -> np.ndarray:
    """Map 0/1 (or pre-signed ±1) labels to ±1, validating the domain."""
    y = np.asarray(y_part, dtype=np.float64).ravel()
    values = np.unique(y)
    if not np.all(np.isin(values, (-1.0, 0.0, 1.0))):
        raise ModelError(
            f"SVM labels must be 0/1 or -1/+1, found values {values.tolist()}")
    if (values == 0.0).any():
        return 2.0 * y - 1.0
    return y


def hpdsvm(
    responses: DArray,
    features: DArray,
    regularization: float = 1e-2,
    epochs: int = 50,
    learning_rate: float = 0.5,
    tolerance: float = 1e-4,
    seed: int = 0,
    feature_names: list[str] | None = None,
) -> SvmModel:
    """Fit a linear SVM on co-partitioned distributed arrays.

    ``responses`` is an n x 1 darray of 0/1 (or ±1) labels co-partitioned
    with the n x p ``features``.  Deterministic for a fixed ``seed`` thanks
    to the driver's shuffle-once visit order.
    """
    if responses.npartitions != features.npartitions:
        raise ModelError(
            f"responses ({responses.npartitions}) and features "
            f"({features.npartitions}) must be co-partitioned"
        )
    if regularization < 0:
        raise ModelError("regularization must be non-negative")
    n_total = features.nrow
    if responses.nrow != n_total:
        raise ModelError(
            f"row mismatch: {responses.nrow} responses vs {n_total} feature rows"
        )
    if n_total == 0:
        raise ModelError("cannot fit an SVM on zero rows")

    fold = _SvmSgdFold(features.ncol, regularization, learning_rate, tolerance)
    state = sgd_fit(features, fold, responses, epochs=epochs, seed=seed)
    return SvmModel(
        weights=state.weights,
        bias=state.bias,
        regularization=regularization,
        iterations=state.iterations,
        converged=state.converged,
        n_observations=n_total,
        feature_names=list(feature_names or []),
    )
