"""Distributed graph algorithms beyond PageRank.

``hpdconnectedcomponents`` — label propagation over an edge-partitioned
undirected graph: every node starts labelled with its own id; each
data-parallel pass propagates the minimum label across local edges until a
fixed point.  Convergence takes O(diameter) passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dr.darray import DArray
from repro.errors import ConvergenceError, ModelError

__all__ = ["ConnectedComponentsResult", "hpdconnectedcomponents"]


@dataclass
class ConnectedComponentsResult:
    """Component labels plus summary statistics."""

    labels: np.ndarray       # (n,), label = min node id of the component
    iterations: int
    converged: bool

    @property
    def n_components(self) -> int:
        return len(np.unique(self.labels))

    def component_sizes(self) -> dict[int, int]:
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(label): int(count) for label, count in zip(unique, counts)}

    def same_component(self, a: int, b: int) -> bool:
        return bool(self.labels[a] == self.labels[b])


def hpdconnectedcomponents(
    edges: DArray,
    n_nodes: int | None = None,
    max_iterations: int = 200,
    fail_on_no_convergence: bool = True,
) -> ConnectedComponentsResult:
    """Connected components of an undirected edge-list darray.

    ``edges`` is an (m, 2) darray of node-id pairs (direction ignored).
    Isolated nodes (no edges) form their own components.
    """
    if edges.ncol != 2:
        raise ModelError(f"edge darray must have 2 columns, has {edges.ncol}")
    if n_nodes is None:
        maxima = edges.map_partitions(
            lambda i, part: int(np.max(part)) if len(part) else -1)
        n_nodes = max(maxima) + 1
    if n_nodes < 1:
        raise ModelError("graph has no nodes")

    labels = np.arange(n_nodes, dtype=np.int64)
    converged = False
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        current = labels

        def propagate(index: int, part: np.ndarray):
            local = np.asarray(part).astype(np.int64)
            proposal = current.copy()
            if len(local):
                sources, targets = local[:, 0], local[:, 1]
                edge_min = np.minimum(current[sources], current[targets])
                np.minimum.at(proposal, sources, edge_min)
                np.minimum.at(proposal, targets, edge_min)
            return proposal

        proposals = edges.map_partitions(propagate)
        new_labels = np.minimum.reduce(proposals) if proposals else labels
        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels

    if not converged and fail_on_no_convergence:
        raise ConvergenceError(
            f"connected components did not converge in {max_iterations} passes"
        )
    return ConnectedComponentsResult(
        labels=labels, iterations=iterations, converged=converged)
