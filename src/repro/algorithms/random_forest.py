"""``hpdrandomforest``: distributed random forests on darrays.

The paper lists random forest among the prediction functions added to
Vertica ("We have added prediction functions in Vertica for common machine
learning models such as clustering, regression, and randomforest", §5), so
the model-creation side lives here: a from-scratch CART learner plus a
partition-parallel ensemble — each worker grows its share of the forest on
bootstrap resamples of its local partition, and the trees are gathered into
one model (the classic embarrassingly-parallel forest construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["DecisionTree", "RandomForestModel", "hpdrandomforest", "train_tree"]

_LEAF = -1


@dataclass
class DecisionTree:
    """A CART tree in flat-array form (cheap to serialize and traverse).

    ``feature[i] == -1`` marks node *i* as a leaf; ``value[i]`` is then the
    prediction (mean response for regression, class-probability vector for
    classification).
    """

    feature: np.ndarray          # (nodes,) int
    threshold: np.ndarray        # (nodes,) float
    left: np.ndarray             # (nodes,) int
    right: np.ndarray            # (nodes,) int
    value: np.ndarray            # (nodes,) or (nodes, classes)
    task: str                    # "regression" | "classification"

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def depth(self) -> int:
        depths = np.zeros(self.node_count, dtype=np.int64)
        maximum = 0
        for node in range(self.node_count):
            if self.feature[node] != _LEAF:
                child_depth = depths[node] + 1
                depths[self.left[node]] = child_depth
                depths[self.right[node]] = child_depth
                maximum = max(maximum, child_depth)
        return maximum

    def predict_value(self, points: np.ndarray) -> np.ndarray:
        """Route every point to its leaf; returns raw leaf values."""
        points = np.asarray(points, dtype=np.float64)
        nodes = np.zeros(len(points), dtype=np.int64)
        active = self.feature[nodes] != _LEAF
        while active.any():
            idx = np.flatnonzero(active)
            current = nodes[idx]
            go_left = points[idx, self.feature[current]] <= self.threshold[current]
            nodes[idx] = np.where(go_left, self.left[current], self.right[current])
            active[idx] = self.feature[nodes[idx]] != _LEAF
        return self.value[nodes]


class _TreeBuilder:
    """Grows one CART tree with reservoir-style node arrays."""

    def __init__(self, task: str, n_classes: int, max_depth: int,
                 min_samples_split: int, min_samples_leaf: int,
                 max_features: int, rng: np.random.Generator) -> None:
        self.task = task
        self.n_classes = n_classes
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list = []

    def build(self, x: np.ndarray, y: np.ndarray) -> DecisionTree:
        self._grow(x, y, depth=0)
        value = np.asarray(self.value, dtype=np.float64)
        return DecisionTree(
            feature=np.asarray(self.feature, dtype=np.int64),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            value=value,
            task=self.task,
        )

    def _leaf_value(self, y: np.ndarray):
        if self.task == "regression":
            return float(y.mean())
        counts = np.bincount(y.astype(np.int64), minlength=self.n_classes)
        return counts / counts.sum()

    def _impurity(self, y: np.ndarray) -> float:
        if self.task == "regression":
            return float(np.var(y)) * len(y)
        counts = np.bincount(y.astype(np.int64), minlength=self.n_classes)
        proportions = counts / len(y)
        return float(1.0 - np.sum(proportions**2)) * len(y)

    def _emit_leaf(self, y: np.ndarray) -> int:
        node = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(self._leaf_value(y))
        return node

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> int:
        n = len(y)
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or len(np.unique(y)) == 1
        ):
            return self._emit_leaf(y)
        split = self._best_split(x, y)
        if split is None:
            return self._emit_leaf(y)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node = len(self.feature)
        self.feature.append(feature)
        self.threshold.append(threshold)
        self.left.append(-2)   # patched below
        self.right.append(-2)
        self.value.append(self._leaf_value(y))
        left_child = self._grow(x[mask], y[mask], depth + 1)
        right_child = self._grow(x[~mask], y[~mask], depth + 1)
        self.left[node] = left_child
        self.right[node] = right_child
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, d = x.shape
        candidates = self.rng.permutation(d)[: self.max_features]
        parent_impurity = self._impurity(y)
        best_gain = 1e-12
        best = None
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            # Candidate boundaries: positions where the value changes.
            change = np.flatnonzero(np.diff(xs)) + 1
            if len(change) == 0:
                continue
            valid = change[
                (change >= self.min_samples_leaf)
                & (change <= n - self.min_samples_leaf)
            ]
            if len(valid) == 0:
                continue
            gains = parent_impurity - self._split_impurities(ys, valid)
            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                cut = valid[best_index]
                best = (int(feature), float((xs[cut - 1] + xs[cut]) / 2.0))
        return best

    def _split_impurities(self, ys: np.ndarray, cuts: np.ndarray) -> np.ndarray:
        """Sum of child impurities for each candidate cut position."""
        n = len(ys)
        if self.task == "regression":
            prefix = np.concatenate([[0.0], np.cumsum(ys)])
            prefix_sq = np.concatenate([[0.0], np.cumsum(ys**2)])
            left_n = cuts.astype(np.float64)
            right_n = n - left_n
            left_sum = prefix[cuts]
            right_sum = prefix[-1] - left_sum
            left_sq = prefix_sq[cuts]
            right_sq = prefix_sq[-1] - left_sq
            left_sse = left_sq - left_sum**2 / left_n
            right_sse = right_sq - right_sum**2 / right_n
            return left_sse + right_sse
        one_hot = np.zeros((n, self.n_classes))
        one_hot[np.arange(n), ys.astype(np.int64)] = 1.0
        prefix = np.vstack([np.zeros(self.n_classes), np.cumsum(one_hot, axis=0)])
        left_counts = prefix[cuts]
        right_counts = prefix[-1] - left_counts
        left_n = cuts.astype(np.float64)[:, None]
        right_n = n - left_n
        left_gini = left_n.ravel() * (
            1.0 - np.sum((left_counts / left_n) ** 2, axis=1)
        )
        right_gini = right_n.ravel() * (
            1.0 - np.sum((right_counts / right_n) ** 2, axis=1)
        )
        return left_gini + right_gini


def train_tree(
    x: np.ndarray,
    y: np.ndarray,
    task: str = "regression",
    n_classes: int | None = None,
    max_depth: int = 12,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    max_features: int | None = None,
    seed: int | None = None,
) -> DecisionTree:
    """Grow a single CART tree on plain arrays."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y).ravel()
    if x.ndim != 2 or len(x) != len(y):
        raise ModelError("train_tree requires aligned 2-D features and responses")
    if len(y) == 0:
        raise ModelError("cannot train a tree on zero rows")
    if task not in ("regression", "classification"):
        raise ModelError(f"unknown task {task!r}")
    if task == "classification":
        classes = int(y.max()) + 1 if n_classes is None else n_classes
    else:
        classes = 0
    builder = _TreeBuilder(
        task=task,
        n_classes=classes,
        max_depth=max_depth,
        min_samples_split=max(2, min_samples_split),
        min_samples_leaf=max(1, min_samples_leaf),
        max_features=max_features or x.shape[1],
        rng=np.random.default_rng(seed),
    )
    return builder.build(x, y)


@dataclass
class RandomForestModel:
    """A trained forest: the trees plus enough metadata to predict."""

    trees: list[DecisionTree] = field(default_factory=list)
    task: str = "regression"
    n_classes: int = 0
    n_features: int = 0
    n_observations: int = 0

    model_type = "randomforest"

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Ensemble prediction: mean (regression) or majority vote."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.shape[1] != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {points.shape[1]}"
            )
        if not self.trees:
            raise ModelError("forest has no trees")
        if self.task == "regression":
            return np.mean([t.predict_value(points) for t in self.trees], axis=0)
        probabilities = self.predict_proba(points)
        return np.argmax(probabilities, axis=1)

    def predict_proba(self, points: np.ndarray) -> np.ndarray:
        if self.task != "classification":
            raise ModelError("predict_proba requires a classification forest")
        points = np.asarray(points, dtype=np.float64)
        return np.mean([t.predict_value(points) for t in self.trees], axis=0)


def hpdrandomforest(
    responses: DArray,
    features: DArray,
    n_trees: int = 50,
    task: str = "regression",
    max_depth: int = 12,
    min_samples_leaf: int = 1,
    max_features: str | int = "sqrt",
    seed: int = 0,
) -> RandomForestModel:
    """Grow a forest in parallel across co-partitioned darrays.

    Each partition grows ``ceil(n_trees / npartitions)`` trees on bootstrap
    resamples of its *local* rows, then the master concatenates the
    ensembles (the standard data-parallel forest approximation).
    """
    if responses.npartitions != features.npartitions:
        raise ModelError("responses and features must be co-partitioned")
    if n_trees < 1:
        raise ModelError("n_trees must be >= 1")
    d = features.ncol
    if max_features == "sqrt":
        feature_budget = max(1, int(np.sqrt(d)))
    elif max_features == "all":
        feature_budget = d
    elif isinstance(max_features, int) and max_features >= 1:
        feature_budget = min(max_features, d)
    else:
        raise ModelError(f"bad max_features {max_features!r}")

    if task == "classification":
        maxima = responses.map_partitions(
            lambda i, part: int(np.max(part)) if len(part) else 0
        )
        n_classes = max(maxima) + 1
    else:
        n_classes = 0

    npartitions = features.npartitions
    trees_per_partition = int(np.ceil(n_trees / npartitions))

    def grow_local(index: int, x_part: np.ndarray, y_part: np.ndarray):
        x = np.asarray(x_part, dtype=np.float64)
        y = np.asarray(y_part).ravel()
        if len(y) == 0:
            return []
        rng = np.random.default_rng(seed + index * 100_003)
        grown = []
        for t in range(trees_per_partition):
            sample = rng.integers(0, len(y), size=len(y))
            grown.append(train_tree(
                x[sample], y[sample],
                task=task,
                n_classes=n_classes or None,
                max_depth=max_depth,
                min_samples_leaf=min_samples_leaf,
                max_features=feature_budget,
                seed=int(rng.integers(2**31)),
            ))
        return grown

    per_partition = features.map_partitions(grow_local, responses)
    trees = [tree for grown in per_partition for tree in grown][:n_trees]
    if not trees:
        raise ModelError("no trees were grown (all partitions empty?)")
    return RandomForestModel(
        trees=trees,
        task=task,
        n_classes=n_classes,
        n_features=d,
        n_observations=features.nrow,
    )
