"""``hpdglm``: distributed generalized linear models via Newton-Raphson.

The paper contrasts this with stock R: "R uses matrix decomposition to
implement regression, while Distributed R uses the Newton-Raphson technique"
(§7.3.1, Figure 18).  Each IRLS/Newton iteration is a single data-parallel
pass: every partition computes its contribution to the normal equations
(``X'WX`` and ``X'Wz``) plus its share of the deviance; the master sums the
partials and solves a small ``p x p`` system.  Communication per iteration
is O(p²), independent of the number of rows — which is why Figure 19's
weak-scaling is flat.

The iteration itself is expressed as a :class:`~repro.algorithms.fold.
PartitionFold` (:class:`_GlmNewtonFold`) and executed by the shared
:func:`~repro.algorithms.fold.fold_fit` driver; for the gaussian family the
fit also records additive sufficient statistics (``X'X``, ``X'y``, response
moments) so ``REFRESH MODEL`` can fold new epochs in without rereading old
rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.families import Family, family_by_name
from repro.algorithms.fold import fold_fit
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["GlmModel", "hpdglm"]


@dataclass
class GlmModel:
    """A fitted GLM: what ``deploy.model`` ships to the database."""

    coefficients: np.ndarray          # includes the intercept first if fitted
    family: str
    link: str
    intercept: bool
    iterations: int
    deviance: float
    null_deviance: float
    converged: bool
    n_observations: int
    feature_names: list[str] = field(default_factory=list)
    standard_errors: np.ndarray | None = None
    # Additive sufficient statistics ({"xtx", "xty", "moments"}) captured for
    # the gaussian family only; they make incremental refresh exact.
    sufficient_stats: dict | None = field(default=None, repr=False, compare=False)

    model_type = "glm"

    @property
    def n_features(self) -> int:
        return len(self.coefficients) - (1 if self.intercept else 0)

    def linear_predictor(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[1] != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {features.shape[1]}"
            )
        if self.intercept:
            return self.coefficients[0] + features @ self.coefficients[1:]
        return features @ self.coefficients

    def predict(self, features: np.ndarray, response_type: str = "response") -> np.ndarray:
        """Predict on a plain matrix.

        ``response_type="response"`` returns the mean (probabilities for
        binomial); ``"link"`` returns the raw linear predictor.
        """
        eta = self.linear_predictor(features)
        if response_type == "link":
            return eta
        if response_type != "response":
            raise ModelError(f"unknown response_type {response_type!r}")
        return family_by_name(self.family).inverse_link(eta)

    def predict_distributed(self, features: DArray,
                            response_type: str = "response") -> DArray:
        """Score a distributed feature array partition-parallel; returns a
        co-located (n, 1) darray of predictions."""
        if features.ncol != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {features.ncol}"
            )
        assignment = [features.worker_of(i) for i in range(features.npartitions)]
        result = DArray(features.session, npartitions=features.npartitions,
                        worker_assignment=assignment)

        def task(index: int, part: np.ndarray):
            result.fill_partition(
                index,
                self.predict(np.asarray(part), response_type=response_type)
                .reshape(-1, 1),
            )
            return None

        features.map_partitions(task)
        return result

    def summary(self) -> str:
        """Human-readable coefficient table (the paper's ``coef(model)``)."""
        names = (["(Intercept)"] if self.intercept else []) + (
            self.feature_names
            or [f"x{i}" for i in range(self.n_features)]
        )
        lines = [
            f"hpdglm(family={self.family}, link={self.link})",
            f"  observations: {self.n_observations}   iterations: {self.iterations}"
            f"   converged: {self.converged}",
            f"  deviance: {self.deviance:.6g}   null deviance: {self.null_deviance:.6g}",
            "  coefficients:",
        ]
        for i, name in enumerate(names):
            se = (
                f"  (se {self.standard_errors[i]:.4g})"
                if self.standard_errors is not None
                else ""
            )
            lines.append(f"    {name:>14s} = {self.coefficients[i]: .6g}{se}")
        return "\n".join(lines)


@dataclass
class _GlmFoldState:
    """Mutable state the Newton fold threads through ``fold_fit``."""

    beta: np.ndarray
    deviance: float = np.inf
    iterations: int = 0
    converged: bool = False
    xtwx: np.ndarray | None = None    # ridged normal matrix of the last step
    gram: np.ndarray | None = None    # unridged X'WX of the last step
    moment: np.ndarray | None = None  # X'Wz of the last step


class _GlmNewtonFold:
    """IRLS/Newton-Raphson expressed in the partition-fold contract.

    ``partial`` is the per-partition pass the pre-refactor code installed
    via ``map_partitions`` (same math, same clipping); ``step`` is the
    master-side ``p x p`` solve.
    """

    solver = "glm.newton"

    def __init__(self, beta0: np.ndarray, family: Family, intercept: bool,
                 p: int, ridge: float, tolerance: float,
                 trace: list | None) -> None:
        self._beta0 = beta0
        self.family = family
        self.intercept = intercept
        self.p = p
        self.ridge = ridge
        self.tolerance = tolerance
        self.trace = trace

    def init_state(self) -> _GlmFoldState:
        return _GlmFoldState(beta=self._beta0)

    def partial(self, state: _GlmFoldState, index: int, x_part: np.ndarray,
                y_part: np.ndarray):
        """(X'WX, X'Wz, deviance) of one partition at the current beta."""
        family = self.family
        y = np.asarray(y_part, dtype=np.float64).ravel()
        x = np.asarray(x_part, dtype=np.float64)
        if self.intercept:
            x = np.column_stack([np.ones(len(x)), x])
        if len(x) == 0:
            p = x.shape[1]
            return np.zeros((p, p)), np.zeros(p), 0.0
        eta = x @ state.beta
        mu = family.inverse_link(eta)
        dmu = family.mean_derivative(eta)
        variance = family.variance(mu)
        weights = np.clip(dmu * dmu / variance, 1e-12, None)
        working = eta + (y - mu) / np.clip(dmu, 1e-12, None)
        weighted_x = x * weights[:, None]
        xtwx = x.T @ weighted_x
        xtwz = weighted_x.T @ working
        deviance = float(np.sum(family.deviance(y, mu)))
        return xtwx, xtwz, deviance

    def merge(self, partials: list):
        xtwx = np.sum([part[0] for part in partials], axis=0)
        xtwz = np.sum([part[1] for part in partials], axis=0)
        new_deviance = float(np.sum([part[2] for part in partials]))
        return xtwx, xtwz, new_deviance

    def step(self, state: _GlmFoldState, merged, iteration: int) -> _GlmFoldState:
        gram, xtwz, new_deviance = merged
        xtwx = gram + self.ridge * np.eye(self.p) if self.ridge else gram
        try:
            new_beta = np.linalg.solve(xtwx, xtwz)
        except np.linalg.LinAlgError:
            new_beta = np.linalg.lstsq(xtwx, xtwz, rcond=None)[0]
        if self.trace is not None:
            self.trace.append((new_deviance, new_beta.copy()))
        relative_change = abs(new_deviance - state.deviance) / (abs(new_deviance) + 0.1)
        state.beta = new_beta
        state.deviance = new_deviance
        state.iterations = iteration
        state.xtwx = xtwx
        state.gram = gram
        state.moment = xtwz
        if relative_change < self.tolerance:
            state.converged = True
        return state

    def converged(self, state: _GlmFoldState) -> bool:
        return state.converged


def hpdglm(
    responses: DArray,
    features: DArray,
    family: Family | str = "gaussian",
    intercept: bool = True,
    max_iterations: int = 25,
    tolerance: float = 1e-8,
    ridge: float = 0.0,
    feature_names: list[str] | None = None,
    trace: list | None = None,
) -> GlmModel:
    """Fit a GLM on co-partitioned distributed arrays.

    ``responses`` is an n x 1 darray, ``features`` n x p, partitioned the
    same way (the ``db2darray_with_response``/``clone`` pattern).  ``trace``,
    if given a list, receives per-iteration ``(deviance, beta)`` tuples —
    used by the convergence benchmarks.
    """
    if isinstance(family, str):
        family = family_by_name(family)
    if responses.npartitions != features.npartitions:
        raise ModelError(
            f"responses ({responses.npartitions}) and features "
            f"({features.npartitions}) must be co-partitioned"
        )
    if ridge < 0:
        raise ModelError("ridge penalty must be non-negative")

    p = features.ncol + (1 if intercept else 0)
    n_total = features.nrow
    if responses.nrow != n_total:
        raise ModelError(
            f"row mismatch: {responses.nrow} responses vs {n_total} feature rows"
        )
    if n_total < p:
        raise ModelError(f"need at least {p} rows to fit {p} coefficients")

    beta = np.zeros(p, dtype=np.float64)
    # Start gaussian at the exact solution in one step by initializing from
    # the mean response; other families start from the family's initializer.
    mean_response = _distributed_mean(responses)
    if intercept:
        if family.name == "binomial":
            clipped = np.clip(mean_response, 1e-6, 1 - 1e-6)
            beta[0] = np.log(clipped / (1 - clipped))
        elif family.name == "poisson":
            beta[0] = np.log(max(mean_response, 1e-6))
        else:
            beta[0] = mean_response

    null_deviance = _total_deviance(responses, features, family, _null_mu(family, mean_response))

    fold = _GlmNewtonFold(beta, family, intercept, p, ridge, tolerance, trace)
    state = fold_fit(features, fold, responses, max_iterations=max_iterations)

    standard_errors = _standard_errors(state.xtwx, family, state.deviance,
                                       n_total, p)
    model = GlmModel(
        coefficients=state.beta,
        family=family.name,
        link=family.link_name,
        intercept=intercept,
        iterations=state.iterations,
        deviance=state.deviance,
        null_deviance=null_deviance,
        converged=state.converged,
        n_observations=n_total,
        feature_names=list(feature_names or []),
        standard_errors=standard_errors,
    )
    if family.name == "gaussian":
        # With identity link and unit weights the last step's X'WX / X'Wz are
        # exactly X'X / X'y, so together with the response moments they are a
        # complete additive summary of the training data.
        model.sufficient_stats = {
            "xtx": state.gram,
            "xty": state.moment,
            "moments": np.asarray(_response_moments(responses), dtype=np.float64),
        }
    return model


def _response_moments(responses) -> tuple[float, float, float]:
    """(n, sum(y), sum(y²)) over a partitioned response vector."""
    partials = responses.map_partitions(
        lambda i, part: (
            len(part),
            float(np.sum(part)),
            float(np.sum(np.square(np.asarray(part, dtype=np.float64)))),
        )
    )
    return (
        float(sum(p[0] for p in partials)),
        float(sum(p[1] for p in partials)),
        float(sum(p[2] for p in partials)),
    )


def _distributed_mean(responses) -> float:
    partials = responses.map_partitions(
        lambda i, part: (float(np.sum(part)), len(part))
    )
    total = sum(p[0] for p in partials)
    count = sum(p[1] for p in partials)
    if count == 0:
        raise ModelError("cannot fit a GLM on zero rows")
    return total / count


def _null_mu(family: Family, mean_response: float) -> float:
    if family.name == "binomial":
        return float(np.clip(mean_response, 1e-10, 1 - 1e-10))
    return mean_response


def _total_deviance(responses, features, family: Family,
                    mu_scalar: float) -> float:
    partials = responses.map_partitions(
        lambda i, part: float(np.sum(family.deviance(
            np.asarray(part, dtype=np.float64).ravel(),
            np.full(len(part), mu_scalar),
        )))
    )
    return float(sum(partials))


def _standard_errors(xtwx: np.ndarray, family: Family, deviance: float,
                     n: int, p: int) -> np.ndarray | None:
    try:
        covariance = np.linalg.inv(xtwx)
    except np.linalg.LinAlgError:
        return None
    if family.name == "gaussian" and n > p:
        dispersion = deviance / (n - p)
    else:
        dispersion = 1.0
    diagonal = np.clip(np.diag(covariance) * dispersion, 0.0, None)
    return np.sqrt(diagonal)
