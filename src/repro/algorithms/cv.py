"""``cv.hpdglm``: k-fold cross-validation for distributed GLMs (Figure 3,
line 7).

Rows are assigned folds deterministically per partition; each fold's
training set is materialized as fold-masked sub-darrays that keep the
original co-location, so the underlying ``hpdglm`` fits never move data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.families import family_by_name
from repro.algorithms.glm import GlmModel, hpdglm
from repro.algorithms.metrics import accuracy, log_loss, mean_squared_error
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["CrossValidationResult", "cv_hpdglm"]


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate held-out metrics."""

    nfolds: int
    family: str
    fold_deviances: list[float]
    fold_metrics: list[float]
    metric_name: str
    models: list[GlmModel]

    @property
    def mean_deviance(self) -> float:
        return float(np.mean(self.fold_deviances))

    @property
    def mean_metric(self) -> float:
        return float(np.mean(self.fold_metrics))

    def summary(self) -> str:
        lines = [
            f"cv.hpdglm: {self.nfolds}-fold, family={self.family}",
            f"  mean held-out deviance: {self.mean_deviance:.6g}",
            f"  mean held-out {self.metric_name}: {self.mean_metric:.6g}",
        ]
        for fold, (dev, metric) in enumerate(
            zip(self.fold_deviances, self.fold_metrics)
        ):
            lines.append(
                f"    fold {fold}: deviance={dev:.6g} {self.metric_name}={metric:.6g}"
            )
        return "\n".join(lines)


def _fold_assignment(features: DArray, nfolds: int, seed: int) -> DArray:
    """A co-located darray of per-row fold ids in [0, nfolds)."""
    from repro.dr.darray import clone

    folds = clone(features, ncol=1, fill=0.0)

    def assign(index: int, _fold_part: np.ndarray, feature_part: np.ndarray):
        rng = np.random.default_rng(seed + index * 7919)
        return rng.integers(0, nfolds, size=len(feature_part)).astype(np.float64)

    folds.update_partitions(assign, features)
    return folds


def _masked_subarray(source: DArray, folds: DArray, fold: int,
                     keep_in_fold: bool) -> DArray:
    """Rows of ``source`` inside (or outside) one fold, same partitioning."""
    assignment = [source.worker_of(i) for i in range(source.npartitions)]
    result = DArray(source.session, npartitions=source.npartitions,
                    worker_assignment=assignment)

    def build(index: int, source_part: np.ndarray, fold_part: np.ndarray):
        fold_ids = np.asarray(fold_part).ravel().astype(np.int64)
        mask = fold_ids == fold if keep_in_fold else fold_ids != fold
        result.fill_partition(index, np.asarray(source_part)[mask])
        return None

    source.map_partitions(build, folds)
    return result


def cv_hpdglm(
    responses: DArray,
    features: DArray,
    family: str = "gaussian",
    nfolds: int = 5,
    seed: int = 0,
    **glm_kwargs,
) -> CrossValidationResult:
    """k-fold cross-validation of ``hpdglm`` on co-partitioned darrays."""
    if nfolds < 2:
        raise ModelError("cross-validation requires at least 2 folds")
    if responses.npartitions != features.npartitions:
        raise ModelError("responses and features must be co-partitioned")
    if features.nrow < nfolds:
        raise ModelError(f"{features.nrow} rows cannot form {nfolds} folds")

    family_obj = family_by_name(family)
    folds = _fold_assignment(features, nfolds, seed)

    fold_deviances: list[float] = []
    fold_metrics: list[float] = []
    models: list[GlmModel] = []
    metric_name = "accuracy" if family_obj.name == "binomial" else "mse"

    for fold in range(nfolds):
        train_x = _masked_subarray(features, folds, fold, keep_in_fold=False)
        train_y = _masked_subarray(responses, folds, fold, keep_in_fold=False)
        test_x = _masked_subarray(features, folds, fold, keep_in_fold=True)
        test_y = _masked_subarray(responses, folds, fold, keep_in_fold=True)

        model = hpdglm(train_y, train_x, family=family, **glm_kwargs)
        models.append(model)

        held_x = test_x.collect()
        held_y = test_y.collect().ravel()
        if len(held_y) == 0:
            raise ModelError(
                f"fold {fold} is empty; reduce nfolds or add data"
            )
        mu = model.predict(held_x)
        fold_deviances.append(float(np.sum(family_obj.deviance(held_y, mu))))
        if family_obj.name == "binomial":
            fold_metrics.append(accuracy(held_y, (mu >= 0.5).astype(np.int64)))
            # log-loss sanity: finite by construction
            log_loss(held_y, mu)
        else:
            fold_metrics.append(mean_squared_error(held_y, mu))

        for temporary in (train_x, train_y, test_x, test_y):
            temporary.free()

    folds.free()
    return CrossValidationResult(
        nfolds=nfolds,
        family=family_obj.name,
        fold_deviances=fold_deviances,
        fold_metrics=fold_metrics,
        metric_name=metric_name,
        models=models,
    )
