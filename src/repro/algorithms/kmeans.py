"""``hpdkmeans``: distributed K-means (Lloyd's algorithm).

Per iteration (the unit Figures 17 and 20 time): the master broadcasts the
current centers; every partition assigns its points to the nearest center
and returns partial sums, counts, and its share of the within-cluster sum of
squares; the master averages.  Communication per iteration is O(K·d),
independent of the row count — the same structure MLlib's K-means uses,
which is what makes Figure 20 an apples-to-apples comparison.

The Lloyd iteration is expressed as a :class:`~repro.algorithms.fold.
PartitionFold` (:class:`_LloydFold`) executed by the shared
:func:`~repro.algorithms.fold.fold_fit` driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.fold import fold_fit
from repro.dr.darray import DArray
from repro.errors import ModelError

__all__ = ["KMeansModel", "hpdkmeans", "assign_to_centers"]


@dataclass
class KMeansModel:
    """A fitted K-means clustering: centers plus fit statistics."""

    centers: np.ndarray           # (k, d)
    inertia: float                # total within-cluster sum of squares
    iterations: int
    converged: bool
    n_observations: int
    cluster_sizes: np.ndarray     # (k,)

    model_type = "kmeans"

    @property
    def k(self) -> int:
        return len(self.centers)

    @property
    def n_features(self) -> int:
        return self.centers.shape[1]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Map each point to its nearest center (0-based labels)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.shape[1] != self.n_features:
            raise ModelError(
                f"model expects {self.n_features} features, got {points.shape[1]}"
            )
        return assign_to_centers(points, self.centers)[0]


def assign_to_centers(points: np.ndarray, centers: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-center assignment; returns (labels, squared distances).

    Uses the ||x||² - 2·x·c + ||c||² expansion so the hot loop is one
    matrix multiply — the compute-bound kernel both engines share.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    point_norms = np.einsum("ij,ij->i", points, points)
    center_norms = np.einsum("ij,ij->i", centers, centers)
    cross = points @ centers.T
    distances = point_norms[:, None] - 2.0 * cross + center_norms[None, :]
    labels = np.argmin(distances, axis=1)
    best = np.maximum(distances[np.arange(len(points)), labels], 0.0)
    return labels, best


def _init_centers(data: DArray, k: int, init: str, rng: np.random.Generator
                  ) -> np.ndarray:
    """Sample initial centers from the distributed data."""
    shapes = data.partition_shapes()
    rows_per_partition = np.asarray([s[0] for s in shapes], dtype=np.int64)
    total = int(rows_per_partition.sum())
    if total < k:
        raise ModelError(f"cannot pick {k} centers from {total} points")
    if init == "random":
        chosen = np.sort(rng.choice(total, size=k, replace=False))
        offsets = np.concatenate([[0], np.cumsum(rows_per_partition)])
        centers = []
        for global_index in chosen:
            partition = int(np.searchsorted(offsets, global_index, side="right") - 1)
            local = int(global_index - offsets[partition])
            centers.append(np.asarray(data.get_partition(partition))[local])
        return np.asarray(centers, dtype=np.float64)
    if init == "kmeans++":
        return _kmeanspp(data, k, rng)
    raise ModelError(f"unknown init {init!r}; use 'random' or 'kmeans++'")


def _kmeanspp(data: DArray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Distributed k-means++ seeding (D² sampling)."""
    first_partition = rng.integers(data.npartitions)
    part = np.asarray(data.get_partition(int(first_partition)), dtype=np.float64)
    while len(part) == 0:
        first_partition = (first_partition + 1) % data.npartitions
        part = np.asarray(data.get_partition(int(first_partition)), dtype=np.float64)
    centers = [part[rng.integers(len(part))].copy()]
    for _ in range(1, k):
        current = np.asarray(centers)
        partials = data.map_partitions(
            lambda i, p: assign_to_centers(np.asarray(p, dtype=np.float64), current)[1]
        )
        weights = np.concatenate(partials)
        total_weight = weights.sum()
        if total_weight <= 0:
            # All points coincide with existing centers: duplicate one.
            centers.append(centers[0].copy())
            continue
        target = rng.random() * total_weight
        global_index = int(np.searchsorted(np.cumsum(weights), target))
        global_index = min(global_index, len(weights) - 1)
        offsets = np.concatenate([[0], np.cumsum([len(p) for p in partials])])
        partition = int(np.searchsorted(offsets, global_index, side="right") - 1)
        local = global_index - offsets[partition]
        centers.append(
            np.asarray(data.get_partition(partition), dtype=np.float64)[local].copy()
        )
    return np.asarray(centers, dtype=np.float64)


@dataclass
class _LloydFoldState:
    """Mutable state the Lloyd fold threads through ``fold_fit``."""

    centers: np.ndarray
    inertia: float = np.inf
    iterations: int = 0
    converged: bool = False
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


class _LloydFold:
    """One Lloyd step expressed in the partition-fold contract."""

    solver = "kmeans.lloyd"

    def __init__(self, k: int, tolerance: float, iteration_callback) -> None:
        self.k = k
        self.tolerance = tolerance
        self.iteration_callback = iteration_callback
        self._centers0: np.ndarray | None = None

    def with_centers(self, centers: np.ndarray) -> "_LloydFold":
        self._centers0 = centers
        return self

    def init_state(self) -> _LloydFoldState:
        return _LloydFoldState(centers=self._centers0,
                               counts=np.zeros(self.k, dtype=np.int64))

    def partial(self, state: _LloydFoldState, index: int, part: np.ndarray):
        """(per-center sums, counts, partial inertia) at the current centers."""
        current = state.centers
        k = self.k
        points = np.asarray(part, dtype=np.float64)
        if len(points) == 0:
            d = current.shape[1]
            return np.zeros((k, d)), np.zeros(k, dtype=np.int64), 0.0
        labels, distances = assign_to_centers(points, current)
        sums = np.zeros((k, points.shape[1]))
        np.add.at(sums, labels, points)
        partition_counts = np.bincount(labels, minlength=k)
        return sums, partition_counts, float(distances.sum())

    def merge(self, partials: list):
        sums = np.sum([part[0] for part in partials], axis=0)
        counts = np.sum([part[1] for part in partials], axis=0)
        new_inertia = float(np.sum([part[2] for part in partials]))
        return sums, counts, new_inertia

    def step(self, state: _LloydFoldState, merged, iteration: int) -> _LloydFoldState:
        sums, counts, new_inertia = merged
        centers = state.centers
        new_centers = centers.copy()
        non_empty = counts > 0
        new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
        # Empty clusters keep their previous center (R's kmeans warns and
        # continues; reseeding would break determinism).
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        state.centers = new_centers
        if self.iteration_callback is not None:
            self.iteration_callback(iteration, new_inertia)
        state.inertia = new_inertia
        state.iterations = iteration
        state.counts = counts
        if shift <= self.tolerance:
            state.converged = True
        return state

    def converged(self, state: _LloydFoldState) -> bool:
        return state.converged


def hpdkmeans(
    data: DArray,
    k: int,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    init: str = "kmeans++",
    initial_centers: np.ndarray | None = None,
    seed: int | None = None,
    iteration_callback=None,
) -> KMeansModel:
    """Cluster a distributed array into ``k`` groups.

    ``iteration_callback(iteration, inertia)`` is invoked after each Lloyd
    step; the per-iteration benchmarks (Figures 17/20) time these steps.
    """
    if k < 1:
        raise ModelError("k must be >= 1")
    if not data.is_filled:
        raise ModelError("cannot cluster a darray with unfilled partitions")
    rng = np.random.default_rng(seed)
    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64)
        if centers.shape != (k, data.ncol):
            raise ModelError(
                f"initial centers must be {(k, data.ncol)}, got {centers.shape}"
            )
        centers = centers.copy()
    else:
        centers = _init_centers(data, k, init, rng)

    n_total = data.nrow
    fold = _LloydFold(k, tolerance, iteration_callback).with_centers(centers)
    state = fold_fit(data, fold, max_iterations=max_iterations)

    return KMeansModel(
        centers=state.centers,
        inertia=state.inertia,
        iterations=state.iterations,
        converged=state.converged,
        n_observations=n_total,
        cluster_sizes=np.asarray(state.counts, dtype=np.int64),
    )
