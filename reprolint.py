"""Launcher shim: makes ``python -m reprolint src tests`` work from the repo
root without PYTHONPATH gymnastics.

The real package lives in ``tools/reprolint/``.  When ``python -m reprolint``
runs from the repo root, the interpreter finds *this* module first (the
current directory precedes ``tools/`` on ``sys.path``); the shim prepends
``tools/``, evicts itself from ``sys.modules`` so the package can take the
name, and delegates to the package CLI.
"""

import os
import sys

_TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "tools")
# tools/ must precede the repo root (where this shim shadows the package),
# even when PYTHONPATH already lists tools/ somewhere later on sys.path.
if _TOOLS in sys.path:
    sys.path.remove(_TOOLS)
sys.path.insert(0, _TOOLS)
sys.modules.pop("reprolint", None)

from reprolint.cli import main  # noqa: E402  (real package, from tools/)

if __name__ == "__main__":
    sys.exit(main())
