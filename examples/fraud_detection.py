"""Fraud detection: the extension features working together.

A payments scenario exercising the features this reproduction adds beyond
the paper's minimum: CSV ingest (`COPY`), SQL joins for feature assembly,
a *custom* model type (Gaussian naive Bayes) deployed through the §5
extension APIs, k-safe tables, and scoring that keeps working through a
node failure.

Run with ``python examples/fraud_detection.py``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import VerticaCluster, start_session
from repro.algorithms import accuracy, hpdnaivebayes, register_naive_bayes_support
from repro.deploy import deploy_model
from repro.vertica import HashSegmentation, copy_from_csv, write_csv

N_ACCOUNTS = 2_000
N_TRANSACTIONS = 40_000
FEATURES = ["amount_z", "hour_z", "velocity_z"]


def synth_data(rng: np.random.Generator):
    accounts = {
        "account_id": np.arange(N_ACCOUNTS),
        "risk_score": rng.uniform(0, 1, N_ACCOUNTS),
        "country": np.asarray(
            rng.choice(["us", "de", "jp", "br"], N_ACCOUNTS), dtype=object),
    }
    is_fraud = rng.random(N_TRANSACTIONS) < 0.08
    transactions = {
        "txn_id": np.arange(N_TRANSACTIONS),
        "account_id": rng.integers(0, N_ACCOUNTS, N_TRANSACTIONS),
        "amount_z": rng.normal(size=N_TRANSACTIONS) + 2.0 * is_fraud,
        "hour_z": rng.normal(size=N_TRANSACTIONS) + 1.5 * is_fraud,
        "velocity_z": rng.normal(size=N_TRANSACTIONS) + 2.5 * is_fraud,
        "label": is_fraud.astype(np.int64),
    }
    return accounts, transactions


def main() -> None:
    rng = np.random.default_rng(13)
    accounts, transactions = synth_data(rng)

    cluster = VerticaCluster(node_count=4)
    register_naive_bayes_support(cluster)

    # --- ingest: accounts arrive as a CSV extract, transactions via ETL ----
    cluster.create_table_like("accounts", accounts, k_safety=1)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "accounts.csv"
        write_csv(csv_path, accounts)
        loaded = copy_from_csv(cluster, "accounts", csv_path)
    print(f"accounts loaded from CSV: {loaded:,}")
    cluster.create_table_like("transactions", transactions,
                              HashSegmentation("account_id"), k_safety=1)
    cluster.bulk_load("transactions", transactions)

    # --- SQL feature assembly: join transactions to account risk -----------
    risky = cluster.sql(
        "SELECT a.country, COUNT(*) AS txns, AVG(t.label) AS fraud_rate "
        "FROM transactions t JOIN accounts a ON t.account_id = a.account_id "
        "WHERE a.risk_score > 0.8 "
        "GROUP BY a.country ORDER BY fraud_rate DESC"
    )
    print("fraud rate by country (high-risk accounts):")
    for country, txns, rate in risky.rows():
        print(f"  {country}: {rate:.3f} over {txns:,} transactions")

    # --- train a custom model type in Distributed R ------------------------
    with start_session(node_count=4, instances_per_node=2) as session:
        from repro.transfer import db2darray_with_response

        y, x = db2darray_with_response(
            cluster, "transactions", "label", FEATURES, session)
        model = hpdnaivebayes(y, x)
        full = np.column_stack([transactions[f] for f in FEATURES])
        train_accuracy = accuracy(transactions["label"], model.predict(full))
        print(f"naive Bayes train accuracy: {train_accuracy:.3f}")

    deploy_model(cluster, model, "fraud_nb", description="fraud screening")
    print(cluster.sql(
        "SELECT model, type, size FROM R_Models WHERE model = 'fraud_nb'"
    ).rows())

    # --- in-database scoring, before and during a node failure --------------
    query = (
        f"SELECT nbPredict({', '.join(FEATURES)} "
        "USING PARAMETERS model='fraud_nb') "
        "OVER (PARTITION BEST) FROM transactions"
    )
    flagged = int(cluster.sql(query).column("label").sum())
    print(f"flagged {flagged:,} of {N_TRANSACTIONS:,} transactions")

    cluster.fail_node(2)
    flagged_after = int(cluster.sql(query).column("label").sum())
    buddy_scans = int(cluster.telemetry.get("buddy_scans"))
    print(f"node 2 failed: still flagged {flagged_after:,} "
          f"(identical: {flagged == flagged_after}; "
          f"{buddy_scans} buddy-replica scans)")
    print(cluster.sql("EXPLAIN " + query).column("plan")[0])


if __name__ == "__main__":
    main()
