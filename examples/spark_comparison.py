"""End-to-end comparison with Spark-on-HDFS (paper §7.3.2, Figs 20-21).

Runs the *same* K-means (identical kernel, identical initial centers)
through both stacks at laptop scale — Vertica + Distributed R vs Spark over
HDFS — then prints the calibrated paper-scale series for Figures 20 and 21.

Run with ``python examples/spark_comparison.py``.
"""

import time

import numpy as np

from repro import VerticaCluster, db2darray, hpdkmeans, start_session
from repro.perfmodel import model_end_to_end_kmeans
from repro.spark import HdfsCluster, SparkContext, spark_kmeans
from repro.vertica import HashSegmentation
from repro.workloads import make_blobs

ROWS = 60_000
FEATURES = 16
K = 40
NODES = 4


def main() -> None:
    dataset = make_blobs(ROWS, FEATURES, K, seed=5)
    init = dataset.points[np.random.default_rng(0).choice(ROWS, K, False)].copy()
    names = dataset.feature_names()

    # --- Vertica + Distributed R ------------------------------------------
    rng = np.random.default_rng(5)
    columns = {"k": rng.integers(0, 10**7, ROWS), **dataset.as_table_columns()}
    cluster = VerticaCluster(node_count=NODES)
    cluster.create_table_like("points", columns, HashSegmentation("k"))
    cluster.bulk_load("points", columns)

    start = time.perf_counter()
    with start_session(node_count=NODES, instances_per_node=2) as session:
        data = db2darray(cluster, "points", names, session)
        load_vertica = time.perf_counter() - start
        start = time.perf_counter()
        dr_model = hpdkmeans(data, K, initial_centers=init,
                             max_iterations=3, tolerance=0.0)
        iterate_vertica = time.perf_counter() - start
    print(f"Vertica+DR : load {load_vertica:6.2f}s  "
          f"3 iterations {iterate_vertica:6.2f}s  inertia {dr_model.inertia:,.0f}")

    # --- Spark on HDFS -----------------------------------------------------
    hdfs = HdfsCluster(datanode_count=NODES, replication=3)
    with SparkContext(hdfs, executors_per_node=2) as sc:
        sc.save_matrix("/data/points", dataset.points, npartitions=NODES)
        start = time.perf_counter()
        rdd = sc.matrix_from_hdfs("/data/points").cache()
        rdd.collect()
        load_spark = time.perf_counter() - start
        start = time.perf_counter()
        spark_model = spark_kmeans(rdd, K, initial_centers=init,
                                   max_iterations=3, tolerance=0.0)
        iterate_spark = time.perf_counter() - start
    print(f"Spark+HDFS : load {load_spark:6.2f}s  "
          f"3 iterations {iterate_spark:6.2f}s  inertia {spark_model.inertia:,.0f}")

    agree = np.allclose(dr_model.centers, spark_model.centers, atol=1e-8)
    print(f"identical kernels, identical answers: {agree}\n")

    # --- the paper-scale picture (240M x 100, K=1000, 4 nodes) -------------
    print("paper-scale model (Fig 21 configuration):")
    systems = model_end_to_end_kmeans(2.4e8, 100, 1000, NODES, 180, iterations=1)
    for name, outcome in systems.items():
        print(f"  {name:<11s} load {outcome.load_seconds / 60:5.1f} min  "
              f"+ {outcome.per_iteration_seconds / 60:5.1f} min/iteration  "
              f"= {outcome.total_seconds / 60:5.1f} min end-to-end")


if __name__ == "__main__":
    main()
