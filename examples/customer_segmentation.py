"""Customer segmentation: distributed K-means with both transfer policies.

Shows the §3.2 trade-off on a *skewed* table: the locality-preserving policy
inherits the database's segmentation skew (straggler partitions), while the
uniform policy balances load.  The chosen model is then deployed and every
customer is labelled in-database, and a random forest is trained on the
segments as a downstream task.

Run with ``python examples/customer_segmentation.py``.
"""

import time

import numpy as np

from repro import (
    VerticaCluster,
    db2darray,
    deploy_model,
    hpdkmeans,
    hpdrandomforest,
    start_session,
)
from repro.algorithms import accuracy
from repro.vertica import SkewedSegmentation
from repro.workloads import make_blobs

SEGMENTS = 6
FEATURES = 8


def main() -> None:
    rng = np.random.default_rng(3)
    behaviour = make_blobs(40_000, FEATURES, SEGMENTS, spread=0.4, seed=3)
    columns = {"customer_id": rng.integers(0, 10**9, behaviour.n_rows),
               **behaviour.as_table_columns(feature_prefix="feat")}
    names = behaviour.feature_names(feature_prefix="feat")

    # A deliberately skewed segmentation: one region holds most customers.
    cluster = VerticaCluster(node_count=4)
    cluster.create_table_like("customers", columns,
                              SkewedSegmentation((5.0, 1.0, 1.0, 1.0)))
    cluster.bulk_load("customers", columns)
    print("table stats:", cluster.table_stats("customers"))

    with start_session(node_count=4, instances_per_node=2) as session:
        for policy in ("locality", "uniform"):
            data = db2darray(cluster, "customers", names, session,
                             policy=policy, chunk_rows=2048)
            rows = [shape[0] for shape in data.partition_shapes()]
            start = time.perf_counter()
            model = hpdkmeans(data, k=SEGMENTS, seed=0, max_iterations=8)
            elapsed = time.perf_counter() - start
            print(f"{policy:>9s}: partitions {rows} -> "
                  f"{model.iterations} iterations in {elapsed:.2f}s, "
                  f"inertia {model.inertia:,.0f}")
            data.free()

        # Train the final model on balanced partitions.
        data = db2darray(cluster, "customers", names, session,
                         policy="uniform", chunk_rows=2048)
        model = hpdkmeans(data, k=SEGMENTS, seed=0, max_iterations=20)

        # Downstream: a random forest predicting the segment from features
        # (e.g. for scoring customers whose full history is unavailable).
        labels = session.darray(
            npartitions=data.npartitions,
            worker_assignment=[data.worker_of(i) for i in range(data.npartitions)],
        )
        data.map_partitions(
            lambda i, part: labels.fill_partition(
                i, model.predict(np.asarray(part)).astype(np.float64))
        )
        forest = hpdrandomforest(labels, data, n_trees=12,
                                 task="classification", max_depth=10, seed=1)
        agreement = accuracy(model.predict(behaviour.points),
                             forest.predict(behaviour.points))
        print(f"forest matches K-means labels on {agreement:.1%} of customers")

    deploy_model(cluster, model, "segments", description="customer segments")
    deploy_model(cluster, forest, "segment_rf", description="segment scorer")
    print(cluster.sql("SELECT model, type, size FROM R_Models").rows())

    result = cluster.sql(
        f"SELECT kmeansPredict({', '.join(names)} "
        "USING PARAMETERS model='segments') "
        "OVER (PARTITION BEST) FROM customers"
    )
    sizes = np.bincount(result.column("cluster"), minlength=SEGMENTS)
    print("in-database segment sizes:", dict(enumerate(sizes.tolist())))


if __name__ == "__main__":
    main()
