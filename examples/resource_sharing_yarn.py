"""Co-located deployment with YARN resource brokering (paper §6).

Vertica and Distributed R share the same machines: the database holds a
long-term allocation, analytics sessions request containers on demand with
locality preference, and cgroup limits isolate the two.  The example also
shows what happens when a session asks for more than the cluster has left.

Run with ``python examples/resource_sharing_yarn.py``.
"""

import numpy as np

from repro import VerticaCluster, db2darray, hpdkmeans, start_session
from repro.errors import ResourceError
from repro.vertica import HashSegmentation
from repro.yarn import NodeCapacity, ResourceManager

NODES = 4
CORES_PER_NODE = 16
MEMORY_PER_NODE = 64 << 30


def main() -> None:
    # One resource manager spans the shared machines.
    yarn = ResourceManager(
        [NodeCapacity(CORES_PER_NODE, MEMORY_PER_NODE) for _ in range(NODES)],
        policy="capacity",
        queue_capacities={"database": 0.5, "analytics": 0.5},
    )

    # The database registers long-lived containers ("releasing resources and
    # tearing down a database is costly").
    database_app = yarn.submit_application(
        "vertica",
        [{"cores": 8, "memory_bytes": 24 << 30, "preferred_node": i}
         for i in range(NODES)],
        queue="database",
        require_all=True,
    )
    print(f"database holds {database_app.cores_allocated} cores "
          f"({yarn.utilization():.0%} of the cluster)")

    cluster = VerticaCluster(node_count=NODES)
    rng = np.random.default_rng(11)
    columns = {"k": rng.integers(0, 10**6, 30_000),
               **{f"c{j}": rng.normal(size=30_000) for j in range(6)}}
    cluster.create_table_like("events", columns, HashSegmentation("k"))
    cluster.bulk_load("events", columns)

    # Analytics sessions come and go; each one asks YARN for containers
    # co-located with the database nodes it will pull segments from.
    for run in range(3):
        with start_session(node_count=NODES, instances_per_node=4,
                           yarn=yarn) as session:
            app = yarn.application(session._yarn_app.application_id)
            print(f"session {run}: {app.cores_allocated} cores granted, "
                  f"locality {app.locality_fraction():.0%}, "
                  f"cluster at {yarn.utilization():.0%}")
            data = db2darray(cluster, "events", [f"c{j}" for j in range(6)],
                             session)
            model = hpdkmeans(data, k=5, seed=run, max_iterations=5)
            print(f"  -> clustered {model.n_observations:,} rows, "
                  f"inertia {model.inertia:,.0f}")
        print(f"session {run} released; cluster back to "
              f"{yarn.utilization():.0%}")

    # Over-subscription: a greedy session cannot evict the database.
    try:
        yarn.submit_application(
            "greedy-session",
            [{"cores": CORES_PER_NODE, "memory_bytes": MEMORY_PER_NODE,
              "preferred_node": i} for i in range(NODES)],
            queue="analytics",
            require_all=True,
        )
    except ResourceError as exc:
        print(f"greedy session rejected as expected: {exc}")

    yarn.release_application(database_app)
    print(f"database released; cluster at {yarn.utilization():.0%}")


if __name__ == "__main__":
    main()
