"""Quickstart: the paper's Figure 3 workflow in ~40 lines.

Run with::

    python examples/quickstart.py

Steps: load operational data into the database, start a Distributed R
session, pull features over Vertica Fast Transfer, fit a distributed
regression, deploy the model, and score a second table with SQL.
"""

import numpy as np

from repro import (
    VerticaCluster,
    db2darray_with_response,
    deploy_model,
    hpdglm,
    start_session,
)
from repro.vertica import HashSegmentation


def main() -> None:
    rng = np.random.default_rng(0)
    n = 50_000
    features = rng.normal(size=(n, 3))
    response = 1.0 + features @ np.array([2.0, -1.5, 0.5]) + rng.normal(
        scale=0.1, size=n)

    # 1. Operational data lives in the database (standard ETL).
    cluster = VerticaCluster(node_count=4)
    columns = {
        "k": rng.integers(0, 1_000_000, n),
        "y": response,
        "a": features[:, 0],
        "b": features[:, 1],
        "c": features[:, 2],
    }
    cluster.create_table_like("mytable", columns, HashSegmentation("k"))
    cluster.bulk_load("mytable", columns)
    print(f"loaded {cluster.sql('SELECT COUNT(*) FROM mytable').scalar():,} rows")

    # 2. distributedR_start()
    with start_session(node_count=4, instances_per_node=2) as session:
        # 3. db2darray: one SQL query, parallel streams, co-located (Y, X).
        y, x = db2darray_with_response(cluster, "mytable", "y",
                                       ["a", "b", "c"], session)
        print("partition sizes:", [s[0] for s in x.partition_shapes()])

        # 4. hpdglm: distributed Newton-Raphson.
        model = hpdglm(y, x, family="gaussian", feature_names=["a", "b", "c"])
        print(model.summary())

    # 5. deploy.model: serialize into the database's DFS + R_Models catalog.
    deploy_model(cluster, model, "rModel", description="forecasting")
    print(cluster.sql("SELECT * FROM R_Models").rows())

    # 6. In-database prediction with SQL.
    predictions = cluster.sql(
        "SELECT glmPredict(a, b, c USING PARAMETERS model='rModel') "
        "OVER (PARTITION BEST) FROM mytable"
    )
    print(f"scored {len(predictions):,} rows in the database; "
          f"first five: {np.round(predictions.column('prediction')[:5], 3)}")


if __name__ == "__main__":
    main()
