"""Real-time ad bidding: the paper's RocketFuel motivation (§1.1).

"Media buying platforms … may create offline regression models on user
characteristics (such as websites visited and demographics), and then use
these models to bid, in real time, on advertisement slots."

The workflow split the paper argues for:

* **offline** — historical impressions are pre-processed with SQL, pulled
  into Distributed R over VFT, and a logistic click-through model is trained
  and cross-validated;
* **online** — the model is deployed into the database, and newly arriving
  auction batches are scored *in-database* (no data ever moves to R), so
  scoring keeps up with the stream.

Run with ``python examples/realtime_ad_bidding.py``.
"""

import time

import numpy as np

from repro import (
    VerticaCluster,
    cv_hpdglm,
    db2darray_with_response,
    deploy_model,
    hpdglm,
    start_session,
)
from repro.vertica import HashSegmentation

TRUE_WEIGHTS = np.array([1.2, -0.8, 0.5, 1.5, -0.3])
FEATURES = ["sites_visited", "session_minutes", "age_bucket",
            "past_clicks", "hour_of_day"]


def synth_users(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Synthetic user-characteristic rows with a known click model."""
    columns = {
        "user_id": rng.integers(0, 10_000_000, n),
        "sites_visited": rng.normal(size=n),
        "session_minutes": rng.normal(size=n),
        "age_bucket": rng.normal(size=n),
        "past_clicks": rng.normal(size=n),
        "hour_of_day": rng.normal(size=n),
    }
    logits = -1.0 + np.column_stack([columns[f] for f in FEATURES]) @ TRUE_WEIGHTS
    columns["clicked"] = (rng.random(n) < 1 / (1 + np.exp(-logits))).astype(np.int64)
    return columns


def main() -> None:
    rng = np.random.default_rng(7)
    cluster = VerticaCluster(node_count=4)

    # --- offline: historical impressions land in the database via ETL ----
    history = synth_users(rng, 60_000)
    cluster.create_table_like("impressions", history, HashSegmentation("user_id"))
    cluster.bulk_load("impressions", history)
    ctr = cluster.sql("SELECT AVG(clicked) FROM impressions").scalar()
    print(f"historical impressions: 60,000 rows, base CTR {ctr:.3f}")

    # SQL pre-processing happens in the database (here: filter bot traffic).
    active = cluster.sql(
        "SELECT COUNT(*) FROM impressions WHERE session_minutes > -2"
    ).scalar()
    print(f"after pre-filtering: {active:,} usable impressions")

    with start_session(node_count=4, instances_per_node=2) as session:
        y, x = db2darray_with_response(
            cluster, "impressions", "clicked", FEATURES, session,
            where="session_minutes > -2",
        )
        model = hpdglm(y, x, family="binomial", feature_names=FEATURES)
        print(model.summary())
        cv = cv_hpdglm(y, x, family="binomial", nfolds=3, seed=0)
        print(cv.summary())

    deploy_model(cluster, model, "ctr_model",
                 description="click-through bidder v1")

    # --- online: score each arriving auction batch inside the database ----
    total_rows = 0
    start = time.perf_counter()
    for batch in range(5):
        auction = synth_users(rng, 20_000)
        table = f"auction_batch_{batch}"
        cluster.create_table_like(table, auction, HashSegmentation("user_id"))
        cluster.bulk_load(table, auction)
        scores = cluster.sql(
            f"SELECT glmPredict({', '.join(FEATURES)} "
            "USING PARAMETERS model='ctr_model') "
            f"OVER (PARTITION BEST) FROM {table}"
        )
        probabilities = scores.column("prediction")
        bids = (probabilities > 0.5).sum()
        total_rows += len(scores)
        print(f"batch {batch}: scored {len(scores):,} slots, "
              f"bidding on {bids:,} ({bids / len(scores):.1%})")
    elapsed = time.perf_counter() - start
    print(f"\nscored {total_rows:,} arriving rows in {elapsed:.2f}s "
          f"({total_rows / elapsed:,.0f} rows/s) without moving data to R")


if __name__ == "__main__":
    main()
