"""Setup shim for environments without the `wheel` package.

Allows `pip install -e . --no-build-isolation --no-use-pep517` (the legacy
`setup.py develop` path) where PEP 517 editable installs are unavailable.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
