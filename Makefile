# Developer entry points. `make lint` always runs reprolint (stdlib-only);
# ruff and mypy run when installed (pip install -e '.[lint]') and are
# skipped with a notice otherwise, so the target works in minimal
# environments and is strict in CI.

PYTHON ?= python

.PHONY: test test-faults test-serving test-aqp lint lint-sql reprolint ruff mypy race docscheck bench-ml all

all: lint test

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

reprolint:
	$(PYTHON) -m reprolint src tests

ruff:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tools tests; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi

mypy:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/dr src/repro/transfer \
			src/repro/vertica/sql src/repro/obs; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

# Run the SQL semantic analyzer (schema-less lenient mode) over every SQL
# string literal in tests/ and examples/: zero analysis errors allowed.
lint-sql:
	PYTHONPATH=src $(PYTHON) tools/sql_lint.py

lint: reprolint ruff mypy lint-sql

# Run the whole suite under instrumented locks: any lock-order inversion
# in the threaded engines fails deterministically instead of deadlocking.
race:
	REPROLINT_LOCK_CHECK=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q

# The failure-scenario matrix under the lock probe.  Set REPRO_FAULT_SEED
# to replay a CI rotating-seed run locally.
test-faults:
	REPROLINT_LOCK_CHECK=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_faults.py

# Execute every fenced python block in README.md and docs/*.md, so the
# documented examples cannot drift from the code they demonstrate.
docscheck:
	PYTHONPATH=src $(PYTHON) tools/docscheck.py

# The serving layer: the unit/concurrency suite under the lock probe, then
# the 100+-session mixed-workload benchmark (drops BENCH_serving.json with
# QPS and p50/p99 under benchmarks/.traces/).
test-serving:
	REPROLINT_LOCK_CHECK=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_serving.py
	PYTHONPATH=src $(PYTHON) -m pytest -x -q benchmarks/bench_serving.py

# Approximate query processing: the sample/WITHIN suite under the lock
# probe, then the exact-vs-approximate benchmark (drops BENCH_aqp.json
# with speedup and realized error under benchmarks/.traces/).
test-aqp:
	REPROLINT_LOCK_CHECK=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_aqp.py
	PYTHONPATH=src $(PYTHON) -m pytest -x -q benchmarks/bench_aqp.py

# The ML ablations: incremental REFRESH MODEL vs full refit by delta size,
# and the Figure 18 solver comparison through the unified fold kernel.
# Each module drops BENCH_*.json datapoints under benchmarks/.traces/.
bench-ml:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		benchmarks/bench_ablation_incremental.py \
		benchmarks/bench_ablation_solvers.py
