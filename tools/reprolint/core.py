"""Core abstractions for the reprolint static-analysis framework.

reprolint is a project-specific linter: each :class:`Checker` encodes one
invariant the reproduction depends on but the type system cannot see (lock
discipline around shared state, exception translation on hot paths, the
darray/dframe conformability protocol, UDF catalog consistency, simulation
determinism, thread hygiene).  Checkers register themselves via
:func:`register` and are driven in parallel over the file set by
:mod:`reprolint.cli`.

Suppression
-----------
A violation can be silenced at the offending line with an inline comment::

    something_flagged()  # reprolint: ignore[lock-discipline]
    something_flagged()  # reprolint: ignore          (all rules)

or accepted long-term in the checked-in ``reprolint.baseline`` file (see
:mod:`reprolint.baseline`), which requires a written justification.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "FileContext",
    "ProjectContext",
    "Checker",
    "register",
    "all_checkers",
    "get_checker",
    "iter_attr_chain",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*ignore(?:\[([a-z0-9_,\- ]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location.

    ``symbol`` is the dotted name of the enclosing class/function (or
    ``<module>``) — the stable half of the baseline fingerprint, so accepted
    findings survive unrelated line-number churn.
    """

    rule: str
    code: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )


class FileContext:
    """Everything a per-file checker needs: source, AST, suppressions."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self._tree: ast.Module | None = None
        self._suppressions: dict[int, set[str] | None] | None = None
        self._spans: list[tuple[int, int, str]] | None = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    def suppressed_rules(self, line: int) -> set[str] | None:
        """Rules suppressed at ``line``: a set of rule names, ``None`` for
        a bare ``reprolint: ignore`` (all rules), or an empty set when the
        line carries no suppression comment."""
        if self._suppressions is None:
            self._suppressions = _scan_suppressions(self.source)
        return self._suppressions.get(line, set())

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.suppressed_rules(violation.line)
        if rules is None:
            return True
        return violation.rule in rules

    def symbol_at(self, line: int) -> str:
        """Dotted name of the innermost class/function enclosing ``line``."""
        if self._spans is None:
            self._spans = _collect_symbol_spans(self.tree)
        best = ""
        best_span: int | None = None
        for start, end, name in self._spans:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = name, span
        return best or "<module>"


def _collect_symbol_spans(tree: ast.Module) -> list[tuple[int, int, str]]:
    """(start_line, end_line, qualname) for every def/class in the module."""
    spans: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", None) or child.lineno
                spans.append((child.lineno, end, name))
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def _scan_suppressions(source: str) -> dict[int, set[str] | None]:
    """Parse ``# reprolint: ignore[...]`` comments via the tokenizer."""
    out: dict[int, set[str] | None] = {}
    try:
        for tok in tokenize.generate_tokens(StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            if match.group(1) is None:
                out[tok.start[0]] = None
            else:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                existing = out.get(tok.start[0], set())
                out[tok.start[0]] = None if existing is None else (existing | rules)
    except (tokenize.TokenizeError, IndentationError):
        pass
    return out


class ProjectContext:
    """Whole-project view for cross-file checkers (e.g. UDF catalog)."""

    def __init__(self, root: Path, files: list[Path]) -> None:
        self.root = root
        self.files = files

    def read(self, relative: str) -> str | None:
        path = self.root / relative
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule`` (kebab-case identifier used in suppressions and
    baselines), ``code`` (short diagnostic code), ``description``, and either
    override :meth:`check` (per-file, ``scope = "file"``) or
    :meth:`check_project` (``scope = "project"``).
    """

    rule: str = ""
    code: str = ""
    description: str = ""
    scope: str = "file"

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(".py")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        return ()

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.rule,
            code=self.code,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            symbol=ctx.symbol_at(line),
        )


_REGISTRY: dict[str, Checker] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator: instantiate the checker and add it to the registry."""
    instance = cls()
    if not instance.rule or not instance.code:
        raise ValueError(f"checker {cls.__name__} must define rule and code")
    if instance.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule {instance.rule!r}")
    _REGISTRY[instance.rule] = instance
    return cls


def all_checkers() -> list[Checker]:
    # Importing the package populates the registry.
    from reprolint import checkers as _  # noqa: F401

    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


def get_checker(rule: str) -> Checker:
    from reprolint import checkers as _  # noqa: F401

    return _REGISTRY[rule]


def iter_attr_chain(node: ast.AST) -> Iterator[str]:
    """Yield name parts left-to-right for a dotted expression (``a.b.c``)."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    yield from reversed(parts)
