"""Runtime race probe: lock-order inversion detection for the test suite.

Static analysis proves each *individual* mutation holds a lock; it cannot
see the *order* in which different locks nest across threads.  A pair of
code paths that acquire ``A`` then ``B`` on one thread and ``B`` then ``A``
on another deadlocks only under unlucky scheduling — exactly the failure
mode that survives CI and corrupts a production run.

:class:`InstrumentedLock` wraps a real ``threading.Lock`` and reports every
acquisition to a global :class:`LockOrderMonitor`, which maintains a
directed lock-order graph (edge ``A -> B`` means "B was acquired while A was
held", remembered *across* threads for the life of the process).  Before a
thread blocks on a lock, the monitor checks whether the new edges would
close a cycle; if so it raises :class:`LockOrderInversion` immediately —
converting a latent deadlock into a deterministic test failure with both
acquisition sites in the message.

Opt in from the test suite by setting ``REPROLINT_LOCK_CHECK=1`` in the
environment (``tests/conftest.py`` calls :func:`maybe_install_from_env`),
which monkeypatches ``threading.Lock`` so every lock the engines create is
instrumented.  The probe is off by default: it adds per-acquisition
bookkeeping and is meant for CI's race-probe job and targeted local runs::

    REPROLINT_LOCK_CHECK=1 python -m pytest -x -q
"""

from __future__ import annotations

import itertools
import os
import threading
import traceback

__all__ = [
    "LockOrderInversion",
    "LockOrderMonitor",
    "InstrumentedLock",
    "install",
    "uninstall",
    "is_installed",
    "maybe_install_from_env",
    "global_monitor",
]

# Captured before any monkeypatching so the monitor's own mutex — and the
# real lock inside every InstrumentedLock — is always a genuine primitive.
_REAL_LOCK_FACTORY = threading.Lock

ENV_VAR = "REPROLINT_LOCK_CHECK"

_TOKENS = itertools.count(1)


class LockOrderInversion(RuntimeError):
    """Two locks were acquired in opposite orders on different code paths."""


def _call_site(skip_prefixes: tuple[str, ...] = ("reprolint",)) -> str:
    """First stack frame outside reprolint itself — the user's acquire site."""
    for frame in reversed(traceback.extract_stack()):
        filename = frame.filename.replace("\\", "/")
        if any(f"/{p}/" in filename or f"{p}/" in filename for p in skip_prefixes):
            continue
        if "/threading.py" in filename:
            continue
        return f"{filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class LockOrderMonitor:
    """Process-wide lock-order graph with preemptive cycle detection."""

    def __init__(self) -> None:
        self._mu = _REAL_LOCK_FACTORY()
        # token -> set of tokens acquired while it was held
        self._edges: dict[int, set[int]] = {}
        # (held_token, acquired_token) -> "thread / site" of first observation
        self._edge_sites: dict[tuple[int, int], str] = {}
        self._names: dict[int, str] = {}
        self._held = threading.local()

    # -- held-lock stack (per thread) -----------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- events ----------------------------------------------------------

    def before_acquire(self, lock: "InstrumentedLock") -> None:
        """Record ordering edges and fail on inversion, before blocking."""
        held = self._stack()
        if not held:
            return
        site = _call_site()
        with self._mu:
            self._names.setdefault(lock.token, lock.name)
            for held_token in held:
                if held_token == lock.token:
                    continue  # re-acquiring a Lock deadlocks regardless; out of scope
                cycle = self._path_exists(lock.token, held_token)
                if cycle is not None:
                    raise LockOrderInversion(self._describe(held_token, lock, cycle, site))
                edge = (held_token, lock.token)
                if edge not in self._edge_sites:
                    self._edges.setdefault(held_token, set()).add(lock.token)
                    self._edge_sites[edge] = (
                        f"thread {threading.current_thread().name!r} at {site}"
                    )

    def after_acquire(self, lock: "InstrumentedLock") -> None:
        self._stack().append(lock.token)

    def after_release(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        if lock.token in stack:
            stack.reverse()
            stack.remove(lock.token)  # out-of-order release: drop first from the top
            stack.reverse()

    def register(self, lock: "InstrumentedLock") -> None:
        with self._mu:
            self._names[lock.token] = lock.name

    # -- graph helpers (caller holds self._mu) ---------------------------

    def _path_exists(self, start: int, goal: int) -> list[int] | None:
        """DFS: path start -> ... -> goal in the recorded order graph."""
        if start == goal:
            return [start]
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for succ in self._edges.get(node, ()):
                if succ == goal:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def _describe(
        self, held_token: int, lock: "InstrumentedLock", cycle: list[int], site: str
    ) -> str:
        held_name = self._names.get(held_token, f"lock#{held_token}")
        chain = " -> ".join(self._names.get(t, f"lock#{t}") for t in cycle)
        edge_site = self._edge_sites.get(
            (lock.token, cycle[1]) if len(cycle) > 1 else (lock.token, held_token),
            "an earlier acquisition",
        )
        return (
            f"lock-order inversion: thread {threading.current_thread().name!r} "
            f"holds {held_name!r} and wants {lock.name!r} at {site}, but the "
            f"opposite order {chain} -> {held_name!r} was already observed "
            f"({edge_site}). These paths can deadlock."
        )

    # -- introspection / test support ------------------------------------

    def edge_count(self) -> int:
        with self._mu:
            return sum(len(v) for v in self._edges.values())

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._edge_sites.clear()
            self._names.clear()


_GLOBAL_MONITOR = LockOrderMonitor()


def global_monitor() -> LockOrderMonitor:
    return _GLOBAL_MONITOR


class InstrumentedLock:
    """Drop-in ``threading.Lock`` replacement that reports to a monitor.

    Fully duck-typed: supports ``acquire(blocking, timeout)``, ``release``,
    ``locked``, and the context-manager protocol, so it also works as the
    inner lock of a ``threading.Condition`` (as used by ``queue.Queue``).
    """

    def __init__(self, name: str | None = None,
                 monitor: LockOrderMonitor | None = None) -> None:
        self._lock = _REAL_LOCK_FACTORY()
        self.token = next(_TOKENS)
        self.name = name or f"Lock@{_call_site()}"
        self.monitor = monitor if monitor is not None else _GLOBAL_MONITOR
        self.monitor.register(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self.monitor.before_acquire(self)
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self.monitor.after_acquire(self)
        return ok

    def release(self) -> None:
        self._lock.release()
        self.monitor.after_release(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def _at_fork_reinit(self) -> None:
        # Matches the C lock API; stdlib fork hooks call this on children.
        self._lock._at_fork_reinit()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<InstrumentedLock {self.name!r} {state}>"


_installed = False


def install() -> None:
    """Monkeypatch ``threading.Lock`` so new locks are instrumented.

    Locks are created in ``__init__`` of the engine classes, so installing
    before object construction (e.g. at conftest import time) instruments
    every lock the engines use.  Pre-existing locks are untouched.
    """
    global _installed
    if _installed:
        return
    threading.Lock = InstrumentedLock  # type: ignore[assignment]
    _installed = True


def uninstall() -> None:
    global _installed
    if not _installed:
        return
    threading.Lock = _REAL_LOCK_FACTORY  # type: ignore[assignment]
    _installed = False


def is_installed() -> bool:
    return _installed


def maybe_install_from_env() -> bool:
    """Install the probe when ``REPROLINT_LOCK_CHECK`` is truthy; else no-op."""
    if os.environ.get(ENV_VAR, "").lower() in ("1", "true", "yes", "on"):
        install()
        return True
    return False
