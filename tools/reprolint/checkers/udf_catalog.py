"""udf-catalog (UC401): prediction UDFs must be installed and documented.

"Users have the flexibility to create their own prediction functions …
and register them with Vertica" (§5) — but the *built-in* ones must always
be present: the SQL front end resolves ``glmPredict`` & co. through the
catalog, and the docs are the contract users program against.

This is a project-scope checker.  It cross-references three artifacts:

1. every public ``TransformFunction`` subclass in
   ``src/repro/deploy/predict_functions.py`` that declares a class-level
   ``name = "..."`` must be returned by ``standard_prediction_functions()``
   (that list is what ``VerticaCluster.install_standard_functions``
   registers in the catalog);
2. ``install_standard_functions`` in ``src/repro/vertica/cluster.py`` must
   still call ``standard_prediction_functions``;
3. each UDF name must appear in ``docs/sql_reference.md``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, ProjectContext, Violation, register

PREDICT_MODULE = "src/repro/deploy/predict_functions.py"
CLUSTER_MODULE = "src/repro/vertica/cluster.py"
SQL_REFERENCE = "docs/sql_reference.md"


def _class_udf_names(tree: ast.Module) -> dict[str, str]:
    """Public class name -> declared UDF name (class-level ``name = "..."``)."""
    out: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
                and stmt.value.value
            ):
                out[node.name] = stmt.value.value
    return out


def _standard_function_classes(tree: ast.Module) -> set[str]:
    """Class names instantiated inside ``standard_prediction_functions``."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "standard_prediction_functions":
            return {
                sub.func.id
                for sub in ast.walk(node)
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            }
    return set()


@register
class UdfCatalogChecker(Checker):
    rule = "udf-catalog"
    code = "UC401"
    description = (
        "every built-in prediction UDF must be registered via "
        "standard_prediction_functions() and documented in docs/sql_reference.md"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        source = project.read(PREDICT_MODULE)
        if source is None:
            yield Violation(
                rule=self.rule, code=self.code, path=PREDICT_MODULE,
                line=1, col=0, symbol="<module>",
                message="prediction UDF module is missing",
            )
            return
        tree = ast.parse(source, filename=PREDICT_MODULE)
        udf_names = _class_udf_names(tree)
        standard = _standard_function_classes(tree)
        docs = project.read(SQL_REFERENCE) or ""
        cluster_src = project.read(CLUSTER_MODULE) or ""

        if "standard_prediction_functions" not in cluster_src:
            yield Violation(
                rule=self.rule, code=self.code, path=CLUSTER_MODULE,
                line=1, col=0, symbol="VerticaCluster.install_standard_functions",
                message=(
                    "install_standard_functions no longer registers "
                    "standard_prediction_functions(); built-in prediction "
                    "UDFs would be missing from the catalog"
                ),
            )

        for cls_name, udf_name in sorted(udf_names.items()):
            line = _class_line(tree, cls_name)
            if cls_name not in standard:
                yield Violation(
                    rule=self.rule, code=self.code, path=PREDICT_MODULE,
                    line=line, col=0, symbol=cls_name,
                    message=(
                        f"prediction UDF {udf_name!r} ({cls_name}) is not "
                        "returned by standard_prediction_functions(); it will "
                        "never be registered in the Vertica catalog"
                    ),
                )
            if udf_name not in docs:
                yield Violation(
                    rule=self.rule, code=self.code, path=PREDICT_MODULE,
                    line=line, col=0, symbol=cls_name,
                    message=(
                        f"prediction UDF {udf_name!r} ({cls_name}) is not "
                        f"documented in {SQL_REFERENCE}; add it to the "
                        "transform-functions table"
                    ),
                )


def _class_line(tree: ast.Module, cls_name: str) -> int:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            return node.lineno
    return 1
