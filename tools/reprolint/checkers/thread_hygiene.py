"""thread-hygiene (TH601): no mutable default args, no fire-and-forget daemons.

Two defect classes that bite threaded engines:

* **Mutable default arguments** — a ``def f(x, acc=[])`` default is created
  once and shared by every call *and every thread*; in a thread-pool worker
  this is silent cross-request state leakage.  Flagged everywhere.
* **Daemon threads without a shutdown path** — ``threading.Thread(...,
  daemon=True)`` (or a ``t.daemon = True`` assignment) dies abruptly at
  interpreter exit, mid-mutation, with locks held.  The engines here manage
  worker lifetimes through ``ThreadPoolExecutor`` / explicit ``shutdown()``;
  a daemon thread is almost always a missing ``join()``.  Suppress with a
  justification if a true background sentinel is intended.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def _is_thread_ctor(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr == "Thread"
    if isinstance(fn, ast.Name):
        return fn.id == "Thread"
    return False


@register
class ThreadHygieneChecker(Checker):
    rule = "thread-hygiene"
    code = "TH601"
    description = (
        "no mutable default arguments (cross-thread state leakage) and no "
        "daemon threads without an explicit shutdown/join path"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
            elif isinstance(node, ast.Call) and _is_thread_ctor(node):
                yield from self._check_thread(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_daemon_assign(ctx, node)

    def _check_defaults(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[Violation]:
        defaults = list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield self.violation(
                    ctx,
                    default,
                    f"mutable default argument in {fn.name}(); the default is "
                    "shared across calls and threads — use None and create "
                    "the container inside the function",
                )

    def _check_thread(self, ctx: FileContext, call: ast.Call) -> Iterable[Violation]:
        for kw in call.keywords:
            if (
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                yield self.violation(
                    ctx,
                    call,
                    "daemon thread spawned; daemons die mid-mutation at "
                    "interpreter exit — manage the lifetime with join()/"
                    "shutdown() instead (suppress with a justification if a "
                    "background sentinel is truly intended)",
                )

    def _check_daemon_assign(self, ctx: FileContext, stmt: ast.Assign) -> Iterable[Violation]:
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "daemon"
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is True
            ):
                yield self.violation(
                    ctx,
                    stmt,
                    "thread marked daemon=True; daemons die mid-mutation at "
                    "interpreter exit — prefer an explicit join()/shutdown() path",
                )
