"""conformability-api (CF301): partition state changes go through dobject.

The paper's flexible darrays enforce conformability at fill time ("if data
is row partitioned, each partition may have variable number of rows, but the
same number of columns", §4).  That guarantee only holds if every partition
write goes through ``fill_partition`` / ``update_partitions`` /
``DistributedObject._store``, which update master-side ``PartitionInfo``
metadata under the object lock.

Outside the ``src/repro/dr/`` implementation itself, this checker flags:

* assignments into ``<obj>.partitions[...]`` or to the ``PartitionInfo``
  fields ``nrow`` / ``ncol`` / ``nbytes`` / ``worker_index`` reached through
  a ``.partitions`` subscript — mutating master metadata directly desyncs
  it from worker contents and bypasses ``partitionsize()`` conformability;
* calls to the private protocol entry points ``_store`` / ``_info`` on
  another object, and writes into a worker's private ``_store`` /
  ``_partition_bytes`` dicts.

Reads (``x.partitions[i].nrow``) are fine and common in tests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

EXEMPT_PREFIX = "src/repro/dr/"
PARTITION_FIELDS = {"nrow", "ncol", "nbytes", "worker_index"}
PRIVATE_PROTOCOL = {"_store", "_info", "_partition_bytes"}


def _touches_partitions_subscript(node: ast.AST) -> bool:
    """True if the expression contains ``<x>.partitions[...]``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Attribute)
            and sub.value.attr == "partitions"
        ):
            return True
    return False


@register
class ConformabilityChecker(Checker):
    rule = "conformability-api"
    code = "CF301"
    description = (
        "darray/dframe partition internals must not be mutated directly; "
        "use fill_partition/update_partitions so conformability checks run"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(".py") and not relpath.startswith(EXEMPT_PREFIX)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    yield from self._check_store_target(ctx, node, target)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_store_target(
        self, ctx: FileContext, stmt: ast.AST, target: ast.AST
    ) -> Iterable[Violation]:
        # x.partitions[i] = ...  or  x.partitions[i].nrow = ...
        if isinstance(target, ast.Subscript) and _touches_partitions_subscript(target):
            yield self.violation(
                ctx,
                stmt,
                "direct write into .partitions[...] bypasses the dobject "
                "update protocol; use fill_partition/update_partitions",
            )
            return
        if isinstance(target, ast.Attribute):
            if target.attr in PARTITION_FIELDS and _touches_partitions_subscript(target.value):
                yield self.violation(
                    ctx,
                    stmt,
                    f"direct write to PartitionInfo.{target.attr} desyncs "
                    "master metadata from worker contents; use "
                    "fill_partition so conformability is re-checked",
                )
                return
            # worker._store[...] = ... style writes are caught via Subscript
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Attribute) and base.attr in PRIVATE_PROTOCOL:
                if not (isinstance(base.value, ast.Name) and base.value.id == "self"):
                    yield self.violation(
                        ctx,
                        stmt,
                        f"write into another object's private {base.attr} "
                        "store; use the worker/dobject public API",
                    )

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterable[Violation]:
        fn = call.func
        if not isinstance(fn, ast.Attribute) or fn.attr not in {"_store", "_info"}:
            return
        receiver = fn.value
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return
        yield self.violation(
            ctx,
            call,
            f"call to private protocol method {fn.attr}() on another object "
            "bypasses the dobject update protocol; use fill_partition or "
            "the public accessors",
        )
