"""snapshot-reads (RL801): segment reads outside storage must carry a snapshot.

The MVCC engine (:mod:`repro.vertica.txn`) makes every scan epoch-consistent
by threading a :class:`~repro.vertica.txn.epochs.Snapshot` into the segment
read entry points — ``iter_rowgroups``, ``iter_batches``, ``read_columns``.
A call site that omits the ``snapshot=`` keyword reads raw physical storage:
no delete-vector filtering, no WOS union, no epoch bound.  That is correct
*inside* the storage layer and the txn package (they implement the
resolution), and in ``table.py`` itself (it resolves snapshots for its
callers) — anywhere else it silently resurrects deleted rows and tears
in-flight insert batches.

This checker flags every call to one of those three methods in
``src/repro/`` outside the sanctioned packages unless it passes an explicit
``snapshot=`` keyword (``snapshot=None`` is accepted: it documents that the
callee resolves the latest committed snapshot itself).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

#: These implement (or sit below) snapshot resolution; raw reads are their job.
EXEMPT_PREFIXES = (
    "src/repro/storage/",
    "src/repro/vertica/txn/",
    "src/repro/vertica/table.py",
)

SNAPSHOT_READ_CALLS = ("iter_rowgroups", "iter_batches", "read_columns")


@register
class SnapshotReadChecker(Checker):
    rule = "snapshot-reads"
    code = "RL801"
    description = (
        "segment rowgroup reads (iter_rowgroups / iter_batches / "
        "read_columns) outside the storage and txn layers must pass "
        "snapshot=, or they bypass delete vectors and the WOS"
    )

    def applies_to(self, relpath: str) -> bool:
        if not relpath.endswith(".py") or not relpath.startswith("src/repro/"):
            return False
        return not any(relpath.startswith(prefix) for prefix in EXEMPT_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        calls = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SNAPSHOT_READ_CALLS
            and not any(kw.arg == "snapshot" for kw in node.keywords)
        ]
        for node in sorted(calls, key=lambda n: (n.lineno, n.col_offset)):
            yield self.violation(
                ctx,
                node,
                f"'{node.func.attr}' without snapshot= bypasses "
                "delete-vector and WOS resolution; pass the statement "
                "snapshot (or snapshot=None to resolve the latest "
                "committed epoch)",
            )
