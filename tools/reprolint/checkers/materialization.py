"""no-full-materialization (RL701): executor/transfer hot paths must stream.

The streaming batch pipeline exists so that the peak memory of a query is
O(queue_depth x batch_rows), not O(table).  That property dies quietly the
moment someone on a hot path calls one of the whole-table (or whole-segment)
materializing entry points — ``scan_all``, an unbatched ``read_columns``,
``scan_node``/``scan_node_replica``, or the eager per-node collectors
``scan_node_with_failover``/``scan_table_per_node`` — instead of pulling
rowgroup batches through :meth:`Segment.iter_rowgroups` /
:meth:`VerticaCluster.stream_table_per_node`.

This checker flags every call to one of those names in the query-execution
and transfer hot paths (``src/repro/vertica/executor.py``,
``src/repro/vertica/cluster.py``, ``src/repro/transfer/``).  The sanctioned
eager fallback (``PipelineConfig(mode="eager")``) keeps its call sites via
baseline entries; anything new must either stream or justify itself the
same way.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

HOT_PATHS = (
    "src/repro/vertica/executor.py",
    "src/repro/vertica/cluster.py",
    "src/repro/transfer/",
)

# Entry points that materialize a whole table / segment / node slice in one
# call.  Streaming code uses Segment.iter_rowgroups, stream_node_with_failover
# and stream_table_per_node instead.
MATERIALIZING_CALLS = {
    "scan_all": "materializes the entire table across all nodes",
    "read_columns": "materializes a whole segment in one unbatched read",
    "scan_node": "materializes a node's entire segment",
    "scan_node_replica": "materializes a buddy node's entire segment",
    "scan_node_with_failover": "materializes a node's entire segment (eager)",
    "scan_table_per_node": "materializes every node's segment at once (eager)",
}


def _called_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class MaterializationChecker(Checker):
    rule = "no-full-materialization"
    code = "RL701"
    description = (
        "no whole-table/segment materialization (scan_all, unbatched "
        "read_columns, scan_node*) on executor/transfer hot paths; pull "
        "rowgroup batches through the streaming pipeline instead"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(".py") and any(
            relpath.startswith(prefix) for prefix in HOT_PATHS
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            why = MATERIALIZING_CALLS.get(name) if name else None
            if why is None:
                continue
            yield self.violation(
                ctx,
                node,
                f"'{name}' {why}; stream rowgroup batches "
                "(Segment.iter_rowgroups / stream_table_per_node) or keep "
                "it behind the eager fallback with a baseline entry",
            )
