"""exception-hygiene (EH201): hot paths must not swallow errors.

The transfer streams, the Distributed R engine, and the Vertica execution
layer run work on thread pools; an exception silently caught there corrupts
results instead of failing the query.  In ``src/repro/transfer/``,
``src/repro/dr/``, and ``src/repro/vertica/`` this checker flags:

* bare ``except:`` — always wrong (it also catches ``KeyboardInterrupt``);
* ``except Exception`` / ``except BaseException`` handlers that neither
  re-``raise`` nor translate the error into a :mod:`repro.errors` type.

Translating means the handler body raises *some* exception — the usual
pattern here is ``raise TransferError(...) from exc``.  Handlers that log
and continue must be narrowed to the specific expected exception type or
carry an inline suppression with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

HOT_PATHS = ("src/repro/transfer/", "src/repro/dr/", "src/repro/vertica/")
OVERBROAD = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str] = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return names


def _handler_raises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@register
class ExceptionHygieneChecker(Checker):
    rule = "exception-hygiene"
    code = "EH201"
    description = (
        "no bare/overbroad except clauses that swallow errors on the "
        "transfer/dr/vertica hot paths; translate into repro.errors types"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(".py") and any(
            relpath.startswith(prefix) for prefix in HOT_PATHS
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare 'except:' swallows every error (including "
                    "KeyboardInterrupt); catch the specific exception and "
                    "translate it into a repro.errors type",
                )
                continue
            overbroad = [n for n in _caught_names(node) if n in OVERBROAD]
            if overbroad and not _handler_raises(node):
                yield self.violation(
                    ctx,
                    node,
                    f"'except {overbroad[0]}' swallows errors on a hot path; "
                    "re-raise or translate into a repro.errors type "
                    "(e.g. 'raise TransferError(...) from exc')",
                )
