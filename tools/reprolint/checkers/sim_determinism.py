"""sim-determinism (SD501): simulation and perf-model code must be replayable.

The simkit event loop and the performance models exist to *replay* measured
workloads at paper scale — a wall-clock read or an unseeded global RNG makes
runs non-reproducible and calibration numbers meaningless.  In
``src/repro/simkit/`` and ``src/repro/perfmodel/`` this checker flags:

* ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
  ``datetime.utcnow()`` — wall clock; simulated time must come from the
  simulation clock, measured time from explicit inputs;
* ``random.<fn>()`` module-level calls — the process-global RNG, seeded (or
  not) by interpreter startup; use a seeded ``random.Random(seed)``;
* legacy ``np.random.<fn>()`` global-state calls — use
  ``np.random.default_rng(seed)`` (``default_rng``, ``Generator`` and
  ``SeedSequence`` themselves are fine).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

SCOPED_PATHS = ("src/repro/simkit/", "src/repro/perfmodel/")
WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}
NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
# Constructors of explicitly-seeded RNGs — the recommended replacements.
PY_RANDOM_OK = {"Random", "SystemRandom"}


def _dotted(node: ast.AST) -> list[str]:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return list(reversed(parts))
    return []


@register
class SimDeterminismChecker(Checker):
    rule = "sim-determinism"
    code = "SD501"
    description = (
        "no wall-clock reads or unseeded global RNG use inside "
        "simkit/ and perfmodel/ — simulations must be replayable"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(".py") and any(
            relpath.startswith(prefix) for prefix in SCOPED_PATHS
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if len(dotted) < 2:
                continue
            tail = (dotted[-2], dotted[-1])
            if tail in WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {'.'.join(dotted)}() in simulation code; "
                    "use the simulation clock or pass timestamps explicitly",
                )
            elif (
                dotted[0] == "random"
                and len(dotted) == 2
                and dotted[1] not in PY_RANDOM_OK
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"global-RNG call {'.'.join(dotted)}(); use a seeded "
                    "random.Random(seed) instance so runs replay identically",
                )
            elif (
                len(dotted) >= 3
                and dotted[-2] == "random"
                and dotted[0] in ("np", "numpy")
                and dotted[-1] not in NUMPY_RANDOM_OK
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy numpy global-RNG call {'.'.join(dotted)}(); use "
                    "np.random.default_rng(seed)",
                )
