"""Checker registry population: importing this package registers all rules."""

from reprolint.checkers import (  # noqa: F401
    conformability,
    exception_hygiene,
    lock_discipline,
    materialization,
    registry_drift,
    sim_determinism,
    snapshot_reads,
    thread_hygiene,
    udf_catalog,
)
