"""registry-drift (RL9xx): observability names must exist in their registries.

Cross-module invariants the type system cannot see, each enforced by
holding the *string literals* engine code emits to the corresponding
registry module:

* **RL901 (metric-drift)** — metric names passed to ``telemetry.add`` /
  ``observe_max`` / ``gauge_add`` and to ``registry.counter`` / ``gauge`` /
  ``histogram`` must be declared in the ``CATALOG`` of
  ``src/repro/obs/metrics.py``.  An undeclared name silently creates a
  dynamic instrument that never appears in ``docs/metrics_reference.md``.
* **RL902 (fault-site-drift)** — injection-site strings passed to
  ``perturb("...")`` must be registered in ``FAULT_SITES`` of
  ``src/repro/faults/sites.py``.  A typo'd site never matches any
  ``FaultSpec``, so the chaos scenario silently tests nothing.
* **RL903 (span-drift)** — span names passed to ``tracer.span("...")``
  must belong to the documented ``SPAN_TAXONOMY`` of
  ``src/repro/obs/trace.py``.  Ad-hoc names fragment traces and drift from
  ``docs/observability.md``.
* **RL904 (model-type-drift)** — every ``model_type = "..."`` a model
  class declares in ``src/repro/algorithms/`` must have a serializer
  registered in ``src/repro/deploy/serialize.py`` *and* a prediction
  function in ``src/repro/deploy/predict_functions.py``.  A model family
  missing either cannot be deployed or cannot be scored in SQL — a gap
  only discovered at runtime.
* **RL905 (serving-registry-drift)** — the serving layer's manifest
  (``SERVING_METRICS`` / ``SERVING_SPANS`` / ``SERVING_FAULT_SITES`` in
  ``src/repro/serving/instruments.py``) must agree with the central
  registries in **both** directions: every manifest name must exist in
  its registry, and every serving-owned registry entry (metrics declared
  under ``repro.serving`` modules, ``serve.*`` spans, ``serving.*`` fault
  sites) must be listed in the manifest.  The manifest is what keeps
  ``docs/serving.md``'s operations tables complete.
* **RL906 (aqp-registry-drift)** — the same two-way manifest check for the
  AQP subsystem (``AQP_METRICS`` / ``AQP_SPANS`` / ``AQP_FAULT_SITES`` in
  ``src/repro/aqp/instruments.py`` against ``repro.aqp`` metrics,
  ``aqp.*`` spans, and ``aqp.*`` fault sites), keeping ``docs/aqp.md``
  complete.

All are project-scope and apply to ``src/`` only: tests deliberately
invent ad-hoc counters, sites, and spans to exercise the dynamic paths.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.core import (
    Checker,
    FileContext,
    ProjectContext,
    Violation,
    iter_attr_chain,
    register,
)

METRICS_MODULE = "src/repro/obs/metrics.py"
SITES_MODULE = "src/repro/faults/sites.py"
TRACE_MODULE = "src/repro/obs/trace.py"
ALGORITHMS_DIR = "src/repro/algorithms/"
SERIALIZE_MODULE = "src/repro/deploy/serialize.py"
PREDICT_MODULE = "src/repro/deploy/predict_functions.py"
SERVING_MANIFEST = "src/repro/serving/instruments.py"
SERVING_METRICS_PREFIX = "repro.serving"
SERVING_SPAN_PREFIX = "serve."
SERVING_SITE_PREFIX = "serving."
AQP_MANIFEST = "src/repro/aqp/instruments.py"
AQP_METRICS_PREFIX = "repro.aqp"
AQP_SPAN_PREFIX = "aqp."
AQP_SITE_PREFIX = "aqp."

#: telemetry-facade methods whose first argument is a metric name.
_TELEMETRY_METHODS = frozenset({"add", "observe_max", "gauge_add"})
#: registry methods whose first argument is a metric name.
_REGISTRY_METHODS = frozenset({"counter", "gauge", "histogram"})


def _first_str_arg(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def _receiver_parts(call: ast.Call) -> list[str]:
    """Dotted receiver names of an attribute call (without the method)."""
    if not isinstance(call.func, ast.Attribute):
        return []
    return list(iter_attr_chain(call.func.value))


def _iter_source_files(project: ProjectContext,
                       exclude: frozenset[str] = frozenset(),
                       ) -> Iterator[FileContext]:
    """Parsed ``src/`` files (tests are allowed ad-hoc names)."""
    from reprolint.cli import relpath as _relpath

    for path in project.files:
        rel = _relpath(project.root, path)
        if not rel.startswith("src/") or rel in exclude:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        ctx = FileContext(path, rel, source)
        try:
            ctx.tree
        except SyntaxError:
            continue  # the per-file pass already reports syntax errors
        yield ctx


def _registry_error(checker: Checker, module: str, what: str) -> Violation:
    return Violation(
        rule=checker.rule, code=checker.code, path=module,
        line=1, col=0, symbol="<module>",
        message=f"cannot extract {what} from {module}; "
                "the registry moved or its declaration shape changed",
    )


def _spec_names(project: ProjectContext) -> set[str] | None:
    """Declared metric names: first argument of every ``_spec(...)`` call."""
    source = project.read(METRICS_MODULE)
    if source is None:
        return None
    names: set[str] = set()
    for node in ast.walk(ast.parse(source, filename=METRICS_MODULE)):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "_spec":
            name = _first_str_arg(node)
            if name is not None:
                names.add(name)
    return names or None


def _dict_literal_keys(project: ProjectContext, module: str,
                       variable: str) -> set[str] | None:
    """String keys of a module-level ``variable = { ... }`` assignment."""
    source = project.read(module)
    if source is None:
        return None
    tree = ast.parse(source, filename=module)
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == variable
                   for t in targets):
            continue
        if isinstance(value, ast.Dict):
            keys = {
                key.value for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            return keys or None
    return None


@register
class MetricDriftChecker(Checker):
    rule = "metric-drift"
    code = "RL901"
    description = (
        "metric names emitted by engine code must be declared in the "
        "obs CATALOG (src/repro/obs/metrics.py)"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        declared = _spec_names(project)
        if declared is None:
            yield _registry_error(self, METRICS_MODULE, "the metric CATALOG")
            return
        for ctx in _iter_source_files(project,
                                      exclude=frozenset({METRICS_MODULE})):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute):
                    continue
                method = node.func.attr
                receiver = _receiver_parts(node)
                if method in _TELEMETRY_METHODS:
                    if not any("telemetry" in part for part in receiver):
                        continue
                elif method in _REGISTRY_METHODS:
                    if not any("registry" in part or "metrics" in part
                               for part in receiver):
                        continue
                else:
                    continue
                name = _first_str_arg(node)
                if name is None or name in declared:
                    continue
                yield self.violation(
                    ctx, node,
                    f"metric {name!r} is not declared in the CATALOG of "
                    f"{METRICS_MODULE}; add an InstrumentSpec (or fix the "
                    "typo) so it appears in docs/metrics_reference.md",
                )


@register
class FaultSiteDriftChecker(Checker):
    rule = "fault-site-drift"
    code = "RL902"
    description = (
        "fault-injection site strings passed to perturb() must be "
        "registered in FAULT_SITES (src/repro/faults/sites.py)"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        declared = _dict_literal_keys(project, SITES_MODULE, "FAULT_SITES")
        if declared is None:
            yield _registry_error(self, SITES_MODULE, "FAULT_SITES")
            return
        for ctx in _iter_source_files(project):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute) \
                        or node.func.attr != "perturb":
                    continue
                site = _first_str_arg(node)
                if site is None or site in declared:
                    continue
                yield self.violation(
                    ctx, node,
                    f"injection site {site!r} is not registered in "
                    f"FAULT_SITES of {SITES_MODULE}; an undeclared site "
                    "never matches a FaultSpec",
                )


@register
class SpanDriftChecker(Checker):
    rule = "span-drift"
    code = "RL903"
    description = (
        "span names opened by tracer.span() must belong to the documented "
        "SPAN_TAXONOMY (src/repro/obs/trace.py)"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        declared = _dict_literal_keys(project, TRACE_MODULE, "SPAN_TAXONOMY")
        if declared is None:
            yield _registry_error(self, TRACE_MODULE, "SPAN_TAXONOMY")
            return
        for ctx in _iter_source_files(project,
                                      exclude=frozenset({TRACE_MODULE})):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute) \
                        or node.func.attr != "span":
                    continue
                name = _first_str_arg(node)
                if name is None or name in declared:
                    continue
                yield self.violation(
                    ctx, node,
                    f"span name {name!r} is not in the SPAN_TAXONOMY of "
                    f"{TRACE_MODULE}; ad-hoc span names fragment traces "
                    "and drift from docs/observability.md",
                )


def _class_str_attr(cls: ast.ClassDef, attr: str) -> str | None:
    """The string value of a class-level ``attr = "..."`` assignment."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == attr for t in targets):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
    return None


def _codec_types(project: ProjectContext) -> set[str] | None:
    """Model types with a serializer: ``register_model_codec("<type>", ...)``."""
    source = project.read(SERIALIZE_MODULE)
    if source is None:
        return None
    types: set[str] = set()
    for node in ast.walk(ast.parse(source, filename=SERIALIZE_MODULE)):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name != "register_model_codec":
            continue
        type_name = _first_str_arg(node)
        if type_name is not None:
            types.add(type_name)
    return types or None


def _predictor_types(project: ProjectContext) -> set[str] | None:
    """Model types a prediction function scores: class-level
    ``expected_model_type`` literals plus ``make_prediction_function``'s
    second argument."""
    source = project.read(PREDICT_MODULE)
    if source is None:
        return None
    types: set[str] = set()
    tree = ast.parse(source, filename=PREDICT_MODULE)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            expected = _class_str_attr(node, "expected_model_type")
            if expected:
                types.add(expected)
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            if name == "make_prediction_function" and len(node.args) >= 2 \
                    and isinstance(node.args[1], ast.Constant) \
                    and isinstance(node.args[1].value, str):
                types.add(node.args[1].value)
    return types or None


@register
class ModelTypeDriftChecker(Checker):
    rule = "model-type-drift"
    code = "RL904"
    description = (
        "every model_type declared in repro.algorithms must have a "
        "serializer in deploy/serialize.py and a prediction function in "
        "deploy/predict_functions.py"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        codecs = _codec_types(project)
        if codecs is None:
            yield _registry_error(self, SERIALIZE_MODULE,
                                  "register_model_codec calls")
            return
        predictors = _predictor_types(project)
        if predictors is None:
            yield _registry_error(self, PREDICT_MODULE,
                                  "prediction-function model types")
            return
        for ctx in _iter_source_files(project):
            if not ctx.relpath.startswith(ALGORITHMS_DIR):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                model_type = _class_str_attr(node, "model_type")
                if model_type is None:
                    continue
                if model_type not in codecs:
                    yield self.violation(
                        ctx, node,
                        f"model type {model_type!r} ({node.name}) has no "
                        f"serializer: add a register_model_codec("
                        f"{model_type!r}, ...) call to {SERIALIZE_MODULE} "
                        "or the model cannot be deployed",
                    )
                if model_type not in predictors:
                    yield self.violation(
                        ctx, node,
                        f"model type {model_type!r} ({node.name}) has no "
                        f"prediction function: add one to {PREDICT_MODULE} "
                        "(expected_model_type or make_prediction_function) "
                        "or the model cannot be scored in SQL",
                    )


def _spec_modules(project: ProjectContext) -> dict[str, str] | None:
    """Declared metric name → emitting module, from ``_spec(...)`` calls."""
    source = project.read(METRICS_MODULE)
    if source is None:
        return None
    modules: dict[str, str] = {}
    for node in ast.walk(ast.parse(source, filename=METRICS_MODULE)):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "_spec":
            name = _first_str_arg(node)
            if name is None or len(node.args) < 5:
                continue
            module = node.args[4]
            if isinstance(module, ast.Constant) and isinstance(module.value, str):
                modules[name] = module.value
    return modules or None


def _sequence_assignment(tree: ast.Module, variable: str) -> ast.expr | None:
    """The value node of a module-level ``variable = (...)`` assignment."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if any(isinstance(t, ast.Name) and t.id == variable for t in targets):
            return value
    return None


def _check_instrument_manifest(
    checker: Checker,
    project: ProjectContext,
    manifest_path: str,
    variables: tuple[str, str, str],
    metrics_prefix: str,
    span_prefix: str,
    site_prefix: str,
    docs_file: str,
) -> Iterator[Violation]:
    """Two-way drift check between a subsystem's instruments manifest and
    the central registries (shared by RL905 and RL906)."""
    metric_modules = _spec_modules(project)
    if metric_modules is None:
        yield _registry_error(checker, METRICS_MODULE, "the metric CATALOG")
        return
    spans = _dict_literal_keys(project, TRACE_MODULE, "SPAN_TAXONOMY")
    if spans is None:
        yield _registry_error(checker, TRACE_MODULE, "SPAN_TAXONOMY")
        return
    sites = _dict_literal_keys(project, SITES_MODULE, "FAULT_SITES")
    if sites is None:
        yield _registry_error(checker, SITES_MODULE, "FAULT_SITES")
        return
    manifest_source = project.read(manifest_path)
    if manifest_source is None:
        yield _registry_error(
            checker, manifest_path, "the instruments manifest")
        return
    manifest = FileContext(
        project.root / manifest_path, manifest_path, manifest_source)
    try:
        manifest.tree
    except SyntaxError:
        yield _registry_error(
            checker, manifest_path, "the instruments manifest")
        return
    owned_metrics = {
        name for name, module in metric_modules.items()
        if module.startswith(metrics_prefix)
    }
    metrics_var, spans_var, sites_var = variables
    checks = [
        (metrics_var, set(metric_modules), owned_metrics,
         f"the CATALOG of {METRICS_MODULE}"),
        (spans_var, spans,
         {s for s in spans if s.startswith(span_prefix)},
         f"the SPAN_TAXONOMY of {TRACE_MODULE}"),
        (sites_var, sites,
         {s for s in sites if s.startswith(site_prefix)},
         f"FAULT_SITES of {SITES_MODULE}"),
    ]
    for variable, registry, owned, registry_desc in checks:
        value = _sequence_assignment(manifest.tree, variable)
        if value is None or not isinstance(value, (ast.Tuple, ast.List)):
            yield _registry_error(
                checker, manifest_path, f"the {variable} tuple")
            continue
        listed: set[str] = set()
        for element in value.elts:
            if not isinstance(element, ast.Constant) \
                    or not isinstance(element.value, str):
                continue
            listed.add(element.value)
            if element.value not in registry:
                yield checker.violation(
                    manifest, element,
                    f"{variable} lists {element.value!r}, which does not "
                    f"exist in {registry_desc}; register it (or fix the "
                    "typo) so the subsystem surface stays documented",
                )
        for missing in sorted(owned - listed):
            yield checker.violation(
                manifest, value,
                f"subsystem-owned name {missing!r} is declared in "
                f"{registry_desc} but missing from {variable}; add it so "
                f"{docs_file}'s operations tables stay complete",
            )


@register
class ServingRegistryDriftChecker(Checker):
    rule = "serving-registry-drift"
    code = "RL905"
    description = (
        "the serving manifest (src/repro/serving/instruments.py) must list "
        "exactly the serving-owned metrics, spans, and fault sites that the "
        "central registries declare"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        yield from _check_instrument_manifest(
            self, project, SERVING_MANIFEST,
            ("SERVING_METRICS", "SERVING_SPANS", "SERVING_FAULT_SITES"),
            SERVING_METRICS_PREFIX, SERVING_SPAN_PREFIX, SERVING_SITE_PREFIX,
            "docs/serving.md",
        )


@register
class AqpRegistryDriftChecker(Checker):
    rule = "aqp-registry-drift"
    code = "RL906"
    description = (
        "the AQP manifest (src/repro/aqp/instruments.py) must list exactly "
        "the AQP-owned metrics, spans, and fault sites that the central "
        "registries declare"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        yield from _check_instrument_manifest(
            self, project, AQP_MANIFEST,
            ("AQP_METRICS", "AQP_SPANS", "AQP_FAULT_SITES"),
            AQP_METRICS_PREFIX, AQP_SPAN_PREFIX, AQP_SITE_PREFIX,
            "docs/aqp.md",
        )
