"""lock-discipline (RL101): shared-state mutation must hold the class lock.

The transfer/DR/Vertica engines guard shared per-object state with
``threading.Lock`` (or sibling primitives).  In any class whose ``__init__``
creates such a primitive, every method that *mutates* an underscore-prefixed
``self._x`` attribute must do so inside a ``with self.<lock>:`` block, where
``<lock>`` is one of the class's lock attributes.

Conventions understood by the checker (all used in this codebase):

* ``__init__`` / ``__post_init__`` and helpers invoked from ``__init__``
  (``self._init_foo(...)``) are exempt — the object is not yet shared.
* Methods whose name ends in ``_locked`` are exempt: by convention they are
  only called with the lock already held (see ``DistributedFileSystem`` and
  ``ResourceManager``).
* Reads are never flagged; only Assign/AugAssign/AnnAssign/Delete targets,
  subscript stores (``self._x[k] = v``), and calls to known mutating methods
  (``self._x.append(...)`` etc.).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Checker, FileContext, Violation, register

SYNC_FACTORIES = {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}
# Only mutex-like primitives can guard state; holding a semaphore slot does
# not exclude other mutators, so it never satisfies the rule.
GUARD_FACTORIES = {"Lock", "RLock", "Condition"}

MUTATOR_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse",
}


def _factory_name(node: ast.AST) -> str | None:
    """``threading.Lock()`` / ``Lock()`` / ``threading.BoundedSemaphore(n)``…"""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    if isinstance(fn, ast.Attribute) and fn.attr in SYNC_FACTORIES:
        return fn.attr
    if isinstance(fn, ast.Name) and fn.id in SYNC_FACTORIES:
        return fn.id
    return None


def _self_attr(node: ast.AST) -> str | None:
    """Return the attribute name for ``self.<attr>`` expressions."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassFacts:
    """What the checker learned about one class."""

    def __init__(self) -> None:
        self.lock_attrs: set[str] = set()
        self.creates_sync = False
        self.init_helpers: set[str] = set()


def _gather_class_facts(cls: ast.ClassDef) -> _ClassFacts:
    facts = _ClassFacts()
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        is_init = stmt.name in ("__init__", "__post_init__")
        for node in ast.walk(stmt):
            if _factory_name(node) is not None:
                facts.creates_sync = True
            if (
                isinstance(node, ast.Assign)
                and _factory_name(node.value) in GUARD_FACTORIES
            ):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        facts.lock_attrs.add(attr)
            if is_init and isinstance(node, ast.Call):
                attr = _self_attr(node.func)
                if attr is not None:
                    facts.init_helpers.add(attr)
    return facts


def _mutated_self_attrs(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """(attr, node) pairs for every ``self._x`` mutation in one statement,
    not descending into nested statement bodies (handled by the walker)."""
    found: list[tuple[str, ast.AST]] = []

    def check_target(target: ast.AST, node: ast.AST) -> None:
        attr = _self_attr(target)
        if attr is not None and attr.startswith("_"):
            found.append((attr, node))
            return
        if isinstance(target, ast.Subscript):
            # self._x[k] = v  (store through a container attribute)
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attr(base)
            if attr is not None and attr.startswith("_"):
                found.append((attr, node))
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                check_target(element, node)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            check_target(target, stmt)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
            return found
        check_target(stmt.target, stmt)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            check_target(target, stmt)
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        fn = stmt.value.func
        if isinstance(fn, ast.Attribute) and fn.attr in MUTATOR_METHODS:
            attr = _self_attr(fn.value)
            if attr is not None and attr.startswith("_"):
                found.append((attr, stmt))
    return found


def _with_holds_class_lock(stmt: ast.With, lock_attrs: set[str]) -> bool:
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            return True
    return False


@register
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    code = "RL101"
    description = (
        "in classes that create threading synchronization primitives, "
        "mutations of self._* shared attributes must hold the class lock"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(ctx, node))
        return violations

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Violation]:
        facts = _gather_class_facts(cls)
        if not facts.creates_sync:
            return
        exempt = {"__init__", "__post_init__"} | facts.init_helpers
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in exempt or stmt.name.endswith("_locked"):
                continue
            yield from self._check_method(ctx, cls, stmt, facts)

    def _check_method(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        facts: _ClassFacts,
    ) -> Iterable[Violation]:
        # Walk the statement tree, tracking whether a class lock is held.
        # Nested function/class definitions are skipped (conservative: they
        # run later, with unknown lock state).
        def walk(stmts: list[ast.stmt], locked: bool) -> Iterable[Violation]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                for attr, node in _mutated_self_attrs(stmt):
                    if attr in facts.lock_attrs:
                        continue
                    if not locked:
                        yield self._report(ctx, cls, method, node, attr, facts)
                if isinstance(stmt, ast.With):
                    inner = locked or _with_holds_class_lock(stmt, facts.lock_attrs)
                    yield from walk(stmt.body, inner)
                elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
                    yield from walk(stmt.body, locked)
                    yield from walk(stmt.orelse, locked)
                elif isinstance(stmt, ast.Try):
                    yield from walk(stmt.body, locked)
                    for handler in stmt.handlers:
                        yield from walk(handler.body, locked)
                    yield from walk(stmt.orelse, locked)
                    yield from walk(stmt.finalbody, locked)

        yield from walk(method.body, locked=False)

    def _report(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        attr: str,
        facts: _ClassFacts,
    ) -> Violation:
        if facts.lock_attrs:
            locks = " / ".join(f"self.{name}" for name in sorted(facts.lock_attrs))
            hint = f"hold {locks} (or rename the method *_locked if callers hold it)"
        else:
            hint = (
                "class creates synchronization primitives but has no lock "
                "attribute; add a self._lock guarding this state"
            )
        return self.violation(
            ctx,
            node,
            f"{cls.name}.{method.name} mutates shared attribute "
            f"self.{attr} outside a lock — {hint}",
        )
