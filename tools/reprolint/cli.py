"""Command-line driver: ``python -m reprolint [paths...]``.

Discovers ``*.py`` files under the given paths (default: ``src tests``),
runs every registered per-file checker over them on a thread pool, runs the
project-scope checkers once, filters inline suppressions and baseline
entries, and prints the remaining findings in ``path:line:col: CODE
[rule] message`` form.

Exit status: 0 clean (or fully baselined), 1 violations or stale/broken
baseline entries, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from reprolint.baseline import (
    DEFAULT_BASELINE_NAME,
    format_entry,
    load_baseline,
    prune_baseline,
)
from reprolint.core import Checker, FileContext, ProjectContext, Violation, all_checkers

EXCLUDED_DIR_NAMES = {
    ".git", "__pycache__", ".venv", "venv", "node_modules",
    ".mypy_cache", ".ruff_cache", ".pytest_cache",
}


def discover_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = (root / raw) if not Path(raw).is_absolute() else Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & EXCLUDED_DIR_NAMES)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def relpath(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_file(
    root: Path, path: Path, checkers: list[Checker]
) -> tuple[list[Violation], list[str]]:
    """Run per-file checkers on one file; returns (violations, errors)."""
    rel = relpath(root, path)
    applicable = [c for c in checkers if c.scope == "file" and c.applies_to(rel)]
    if not applicable:
        return [], []
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [], [f"{rel}: cannot read file: {exc}"]
    ctx = FileContext(path, rel, source)
    try:
        ctx.tree
    except SyntaxError as exc:
        return [], [f"{rel}:{exc.lineno or 1}: syntax error: {exc.msg}"]
    violations: list[Violation] = []
    for checker in applicable:
        for violation in checker.check(ctx):
            if not ctx.is_suppressed(violation):
                violations.append(violation)
    return violations, []


def run(
    root: Path,
    paths: list[str],
    select: list[str] | None = None,
    baseline_path: Path | None = None,
    jobs: int = 0,
    prune: bool = False,
    out=sys.stdout,
) -> int:
    checkers = all_checkers()
    if select:
        known = {c.rule for c in checkers}
        unknown = [r for r in select if r not in known]
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(unknown)}", file=out)
            return 2
        checkers = [c for c in checkers if c.rule in select]

    try:
        files = discover_files(root, paths)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=out)
        return 2

    errors: list[str] = []
    violations: list[Violation] = []

    workers = jobs if jobs > 0 else min(32, (len(files) or 1))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for file_violations, file_errors in pool.map(
            lambda p: check_file(root, p, checkers), files
        ):
            violations.extend(file_violations)
            errors.extend(file_errors)

    project = ProjectContext(root, files)
    for checker in checkers:
        if checker.scope != "project":
            continue
        try:
            violations.extend(checker.check_project(project))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{checker.rule}: project check failed: {exc}")

    resolved_baseline_path = (
        baseline_path if baseline_path is not None else root / DEFAULT_BASELINE_NAME
    )
    baseline = load_baseline(resolved_baseline_path)
    errors.extend(baseline.errors)

    reported = [v for v in violations if not baseline.matches(v)]
    reported.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    for error in errors:
        print(f"error: {error}", file=out)
    for violation in reported:
        print(violation.render(), file=out)

    if prune:
        dropped = prune_baseline(resolved_baseline_path, baseline)
        if dropped:
            print(
                f"pruned {dropped} stale entr(y/ies) from "
                f"{resolved_baseline_path.name}",
                file=out,
            )
        stale = []
    else:
        stale = baseline.stale_entries()
    for entry in stale:
        print(
            f"stale-baseline: {DEFAULT_BASELINE_NAME}:{entry.line}: "
            f"{entry.rule} at {entry.path}:{entry.symbol} no longer fires — "
            "remove the entry",
            file=out,
        )

    if reported:
        print(file=out)
        print("To accept a finding long-term, add a baseline line like:", file=out)
        print(f"  {format_entry(reported[0])}", file=out)

    accepted = len(violations) - len(reported)
    summary = (
        f"reprolint: {len(files)} files, {len(reported)} violation(s)"
        + (f", {accepted} baselined" if accepted else "")
        + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
        + (f", {len(errors)} error(s)" if errors else "")
    )
    print(summary, file=out)
    return 1 if (reported or stale or errors) else 0


def list_rules(out=sys.stdout) -> int:
    for checker in all_checkers():
        scope = "project" if checker.scope == "project" else "file"
        print(f"{checker.code}  {checker.rule:<20} ({scope})  {checker.description}", file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-specific static analysis for the Vertica/Distributed R reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze (default: src tests)")
    parser.add_argument("--root", default=".",
                        help="repository root (for relative paths and the baseline)")
    parser.add_argument("--select", default="",
                        help="comma-separated rule names to run (default: all)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--jobs", type=int, default=0,
                        help="analysis thread count (default: one per file, capped)")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file dropping entries "
                             "that no longer fire")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        return list_rules()

    root = Path(args.root)
    if not root.is_dir():
        print(f"reprolint: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    select = [r.strip() for r in args.select.split(",") if r.strip()] or None
    baseline_path = Path(args.baseline) if args.baseline else None
    paths = args.paths or ["src", "tests"]
    return run(root, paths, select=select, baseline_path=baseline_path,
               jobs=args.jobs, prune=args.prune_baseline)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
