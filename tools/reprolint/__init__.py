"""reprolint: project-specific static analysis + runtime race probe.

Static side (``python -m reprolint src tests``): an AST-based checker
framework with six rules protecting the invariants this reproduction's
correctness rests on — lock discipline around shared state, exception
translation on the transfer/DR/Vertica hot paths, the darray/dframe
conformability protocol, UDF catalog/docs consistency, simulation
determinism, and thread hygiene.  See ``docs/static_analysis.md``.

Runtime side (:mod:`reprolint.runtime`): an opt-in instrumented lock that
detects lock-order inversions across threads while the test suite runs
(``REPROLINT_LOCK_CHECK=1``).
"""

from reprolint.core import (  # noqa: F401
    Checker,
    FileContext,
    ProjectContext,
    Violation,
    all_checkers,
    get_checker,
    register,
)

__version__ = "1.0.0"

__all__ = [
    "Checker",
    "FileContext",
    "ProjectContext",
    "Violation",
    "all_checkers",
    "get_checker",
    "register",
    "__version__",
]
