"""Baseline support: deliberately accepted findings, with justifications.

The baseline file (``reprolint.baseline`` at the repo root by default) lets
a violation be accepted long-term without an inline suppression.  Each entry
is one line::

    rule | path | symbol | justification

where ``symbol`` is the enclosing class/function qualname reported by the
linter (line-number independent, so entries survive refactors).  The
justification is mandatory — an entry without one is a lint error itself.

Blank lines and ``#`` comments are ignored.  Entries that no longer match
any current violation are reported as *stale* so the baseline shrinks over
time instead of rotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from reprolint.core import Violation

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "prune_baseline"]

DEFAULT_BASELINE_NAME = "reprolint.baseline"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str
    line: int  # line in the baseline file, for error messages

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


class Baseline:
    def __init__(self, entries: list[BaselineEntry], errors: list[str]) -> None:
        self.entries = entries
        self.errors = errors
        self._index = {entry.fingerprint(): entry for entry in entries}
        self._matched: set[tuple[str, str, str]] = set()

    def matches(self, violation: Violation) -> bool:
        fp = violation.fingerprint()
        if fp in self._index:
            self._matched.add(fp)
            return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        return [e for e in self.entries if e.fingerprint() not in self._matched]


def load_baseline(path: Path) -> Baseline:
    if not path.is_file():
        return Baseline([], [])
    entries: list[BaselineEntry] = []
    errors: list[str] = []
    seen: set[tuple[str, str, str]] = set()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [part.strip() for part in line.split("|")]
        if len(parts) != 4:
            errors.append(
                f"{path.name}:{lineno}: expected 'rule | path | symbol | "
                f"justification', got {len(parts)} field(s)"
            )
            continue
        rule, rel, symbol, justification = parts
        if not justification:
            errors.append(
                f"{path.name}:{lineno}: baseline entry for {rule} at "
                f"{rel}:{symbol} has no justification"
            )
            continue
        entry = BaselineEntry(rule, rel, symbol, justification, lineno)
        if entry.fingerprint() in seen:
            errors.append(f"{path.name}:{lineno}: duplicate baseline entry")
            continue
        seen.add(entry.fingerprint())
        entries.append(entry)
    return Baseline(entries, errors)


def format_entry(violation: Violation, justification: str = "TODO: justify") -> str:
    return f"{violation.rule} | {violation.path} | {violation.symbol} | {justification}"


def prune_baseline(path: Path, baseline: Baseline) -> int:
    """Rewrite the baseline dropping entries that no longer fire.

    ``baseline`` must come from a completed lint run (its ``matches`` calls
    record which entries still fire).  Comments, blank lines, and malformed
    lines are preserved verbatim; only well-formed entries whose finding is
    gone are removed.  Returns the number of dropped entries.
    """
    if not path.is_file():
        return 0
    stale_lines = {entry.line for entry in baseline.stale_entries()}
    if not stale_lines:
        return 0
    kept = [
        raw for lineno, raw in
        enumerate(path.read_text(encoding="utf-8").splitlines(), 1)
        if lineno not in stale_lines
    ]
    content = "\n".join(kept)
    path.write_text(content + "\n" if content else "", encoding="utf-8")
    return len(stale_lines)
