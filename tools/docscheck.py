"""Execute the fenced ``python`` blocks in the markdown docs.

Documentation that shows code rots silently: an API rename leaves every
snippet plausible-looking and wrong.  This runner extracts each fenced
block whose info string is ``python`` and executes it, so the docs are
tested the same way the code is.  Conventions:

* Blocks in the same file share one namespace and run top to bottom, so a
  later snippet can build on an earlier one (the observability walkthrough
  does this).  Each file starts fresh.
* Mark illustrative, non-runnable fragments with ``python no-run`` in the
  fence info string; they are skipped (and reported as skipped).
* Bare fences and other languages (``sql``, ``bash``, ``text``) are ignored.

Usage::

    PYTHONPATH=src python tools/docscheck.py            # README.md + docs/*.md
    PYTHONPATH=src python tools/docscheck.py docs/observability.md

``make docscheck`` wraps the default invocation; ``tests/test_docs_examples.py``
runs the same extraction per file inside the test suite.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class Fence:
    """One fenced code block: where it is and what it says."""

    path: Path
    lineno: int  # 1-based line of the opening ```
    info: str  # the fence info string, e.g. "python no-run"
    source: str

    @property
    def language(self) -> str:
        tokens = self.info.split()
        return tokens[0] if tokens else ""

    @property
    def runnable(self) -> bool:
        return self.language == "python" and "no-run" not in self.info.split()

    @property
    def label(self) -> str:
        return f"{self.path}:{self.lineno}"


def extract_fences(path: Path) -> list[Fence]:
    """All fenced code blocks in a markdown file, in order."""
    fences: list[Fence] = []
    info: str | None = None
    opened_at = 0
    body: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if info is None:
            if stripped.startswith("```") and stripped != "```":
                info = stripped[3:].strip()
                opened_at = lineno
                body = []
            elif stripped == "```":
                info = ""
                opened_at = lineno
                body = []
        elif stripped == "```":
            fences.append(Fence(path, opened_at, info, "\n".join(body)))
            info = None
        else:
            body.append(line)
    if info is not None:
        raise ValueError(f"{path}:{opened_at}: unterminated ``` fence")
    return fences


def run_file(path: Path, verbose: bool = True) -> list[str]:
    """Execute a file's runnable fences in one shared namespace.

    Returns a list of error descriptions (empty means the file passed).
    A fence that raises does not stop the remaining fences — later
    snippets usually don't depend on the failed one, and reporting every
    broken block at once beats one-error-per-run.
    """
    errors: list[str] = []
    namespace: dict[str, object] = {"__name__": f"docscheck:{path.name}"}
    for fence in extract_fences(path):
        if fence.language != "python":
            continue
        if not fence.runnable:
            if verbose:
                print(f"  skip  {fence.label} (no-run)")
            continue
        # Offset with blank lines so tracebacks point at the real markdown
        # line numbers (the fence body starts the line after the ```).
        padded = "\n" * fence.lineno + fence.source
        try:
            exec(compile(padded, str(path), "exec"), namespace)
        except Exception:
            errors.append(f"{fence.label}\n{traceback.format_exc()}")
            if verbose:
                print(f"  FAIL  {fence.label}")
        else:
            if verbose:
                print(f"  ok    {fence.label}")
    return errors


def default_files() -> list[Path]:
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Execute fenced python blocks from markdown docs."
    )
    parser.add_argument("files", nargs="*", type=Path,
                        help="markdown files (default: README.md docs/*.md)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only report failures")
    args = parser.parse_args(argv)

    files = args.files or default_files()
    all_errors: list[str] = []
    for path in files:
        if not args.quiet:
            print(path)
        all_errors.extend(run_file(path, verbose=not args.quiet))
    if all_errors:
        print(f"\ndocscheck: {len(all_errors)} failing snippet(s)",
              file=sys.stderr)
        for error in all_errors:
            print(f"\n--- {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
