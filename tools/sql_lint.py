"""Run the SQL semantic analyzer over every SQL literal in tests/ and examples/.

``make lint-sql`` entry point.  Walks the Python sources, extracts string
literals that look like SQL statements (they start with a statement
keyword), parses them with the real parser, and analyzes them in the
schema-less lenient mode (:class:`LenientProvider`): no catalog is
available, so only structural and scope diagnostics can fire — and none
are allowed.  Warnings are reported but do not fail the run.

Literals inside ``pytest.raises(...)`` blocks are skipped (they are
*supposed* to be invalid), as is ``tests/test_sql_analyzer.py`` whose
golden corpus is invalid by design.  f-strings are linted when every
interpolation can be replaced by a placeholder identifier without changing
the statement's shape.

Exit status: 0 clean, 1 analysis errors or unparseable SQL, 2 usage error.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("tests", "examples")

#: Files whose SQL is deliberately malformed.
EXCLUDED_FILES = frozenset({
    "tests/test_sql_analyzer.py",
})

#: Sentinel substituted for every interpolation in f-strings and ``+``
#: concatenations.  At lint time each occurrence is rendered with every
#: entry of :data:`RENDERINGS` until one parses: an identifier fits
#: table/column slots, a number fits AT EPOCH / VALUES slots, a subquery
#: fits ``EXPLAIN``/``PROFILE``.  Interpolated SQL that fits none is
#: skipped (its shape is not statically knowable); a *pure* literal that
#: fails to parse is always an error.
PLACEHOLDER = "\x00"
RENDERINGS = ("ph", "1", "SELECT ph FROM ph")

#: A literal is treated as SQL when it starts with one of these keywords.
_SQL_START = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|CREATE|DROP|REFRESH|EXPLAIN|PROFILE"
    r"|SHOW|AT\s+EPOCH)\b",
    re.IGNORECASE,
)


def _in_raises_block(node: ast.AST, raises_spans: list[tuple[int, int]]) -> bool:
    lineno = getattr(node, "lineno", None)
    if lineno is None:
        return False
    return any(start <= lineno <= end for start, end in raises_spans)


def _raises_spans(tree: ast.AST) -> list[tuple[int, int]]:
    """Line ranges of every ``with pytest.raises(...)`` block."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            parts: list[str] = []
            while isinstance(expr, ast.Attribute):
                parts.append(expr.attr)
                expr = expr.value
            if isinstance(expr, ast.Name):
                parts.append(expr.id)
            if "raises" in parts:
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


#: Calls whose string arguments are never full SQL statements: lexer-level
#: tests and prefix assertions.
_NON_SQL_CALLS = frozenset({"tokenize", "startswith", "endswith"})


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _non_sql_contexts(tree: ast.AST) -> set[int]:
    """ids of literal nodes that look like SQL but are not statements:
    ``tokenize(...)`` fixtures, ``.startswith(...)`` prefixes, and span
    attribute labels (``tracer.span(..., statement="SELECT 1")``)."""
    skip: set[int] = set()

    def mark(expr: ast.AST) -> None:
        for sub in ast.walk(expr):
            skip.add(id(sub))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _NON_SQL_CALLS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                mark(arg)
        elif name == "span":
            for kw in node.keywords:
                mark(kw.value)
    return skip


def _literal_sql(node: ast.AST) -> str | None:
    """The SQL text of a literal node, or None when it is not linteable.

    Plain constants are used verbatim; f-strings have each interpolation
    replaced by the identifier ``ph`` (a numeric placeholder would be wrong
    for table names, so an identifier keeps the statement's shape).
    Implicit concatenation arrives pre-joined in the Constant node.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(PLACEHOLDER)
        return "".join(parts)
    return None


def _concat_sql(node: ast.BinOp) -> str | None:
    """Text of a ``"..." + expr + "..."`` chain, placeholders for exprs."""
    parts: list[str] = []
    found_string = False

    def flatten(expr: ast.AST) -> None:
        nonlocal found_string
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            flatten(expr.left)
            flatten(expr.right)
            return
        text = _literal_sql(expr)
        if text is None:
            parts.append(PLACEHOLDER)
        else:
            found_string = True
            parts.append(text)

    flatten(node)
    return "".join(parts) if found_string else None


def iter_sql_literals(path: Path, source: str) -> Iterator[tuple[int, str]]:
    """(line, sql) for every SQL-shaped literal outside pytest.raises."""
    tree = ast.parse(source, filename=str(path))
    spans = _raises_spans(tree)
    seen = _non_sql_contexts(tree)
    for node in ast.walk(tree):
        if id(node) in seen:
            continue
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            sql = _concat_sql(node)
        else:
            sql = _literal_sql(node)
        if sql is None or not _SQL_START.match(sql):
            continue
        if len(sql.split()) < 2:
            continue  # a lone keyword (token-assertion fixture), not SQL
        # Mark constituents as consumed so the pieces of a concatenation
        # or f-string are not re-reported as independent literals.
        for sub in ast.walk(node):
            seen.add(id(sub))
        if _in_raises_block(node, spans):
            continue
        yield node.lineno, sql


def lint_file(path: Path, *, out=sys.stdout) -> tuple[int, int, int]:
    """Lint one file; returns (statements, errors, warnings)."""
    from repro.errors import SqlSyntaxError
    from repro.vertica.sql import parse
    from repro.vertica.sql.analyzer import LenientProvider, analyze

    rel = path.relative_to(REPO_ROOT).as_posix()
    source = path.read_text(encoding="utf-8")
    statements = errors = warnings = 0
    provider = LenientProvider()
    for lineno, template in iter_sql_literals(path, source):
        statements += 1
        interpolated = PLACEHOLDER in template
        candidates = ([template.replace(PLACEHOLDER, r) for r in RENDERINGS]
                      if interpolated else [template])
        head = " ".join(candidates[0].split())[:60]
        stmt = None
        last_error: SqlSyntaxError | None = None
        for candidate in candidates:
            try:
                stmt = parse(candidate)
                break
            except SqlSyntaxError as exc:
                last_error = exc
        if stmt is None:
            if interpolated:
                continue  # shape depends on the interpolation: not linteable
            errors += 1
            print(f"{rel}:{lineno}: syntax error in {head!r}: {last_error}",
                  file=out)
            continue
        resolved = analyze(stmt, provider)
        for diag in resolved.diagnostics:
            if diag.severity == "error":
                errors += 1
            else:
                warnings += 1
            print(f"{rel}:{lineno}: {diag.render()} in {head!r}", file=out)
    return statements, errors, warnings


def main(argv: list[str] | None = None) -> int:
    raw = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_PATHS)
    files: list[Path] = []
    for entry in raw:
        path = (REPO_ROOT / entry) if not Path(entry).is_absolute() else Path(entry)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            print(f"sql-lint: no such file or directory: {entry}",
                  file=sys.stderr)
            return 2
    statements = errors = warnings = 0
    for path in files:
        rel = path.relative_to(REPO_ROOT).as_posix()
        if rel in EXCLUDED_FILES:
            continue
        file_counts = lint_file(path)
        statements += file_counts[0]
        errors += file_counts[1]
        warnings += file_counts[2]
    print(f"sql-lint: {statements} statement(s) analyzed, "
          f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
