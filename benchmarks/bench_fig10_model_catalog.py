"""Figure 10: the ``R_Models`` catalog — deployment and catalog queries.

Benchmarks the deploy -> catalog-query path and reproduces the figure's
table contents (two models, different owners/types).
"""

import numpy as np
import pytest

from repro.algorithms import hpdglm, hpdkmeans
from repro.deploy import deploy_model
from repro.dr import start_session
from repro.vertica import VerticaCluster


@pytest.fixture(scope="module")
def trained_models():
    with start_session(node_count=2, instances_per_node=1) as session:
        rng = np.random.default_rng(10)
        data = session.darray(npartitions=2)
        data.fill_from(rng.normal(size=(600, 4)))
        km = hpdkmeans(data, k=3, seed=0, max_iterations=5)
        responses = session.darray(
            npartitions=2, worker_assignment=[data.worker_of(i) for i in range(2)])
        responses.fill_from(rng.normal(size=(600, 1)))
        glm = hpdglm(responses, data)
    return km, glm


def test_fig10_deploy_model(benchmark, trained_models):
    km, glm = trained_models
    counter = [0]

    def run():
        cluster = VerticaCluster(node_count=2)
        deploy_model(cluster, km, "model1", owner="X", description="clustering")
        deploy_model(cluster, glm, "model2", owner="Y", description="forecasting")
        counter[0] += 1
        return cluster

    cluster = benchmark(run)
    rows = cluster.sql(
        "SELECT model, owner, type, description FROM R_Models ORDER BY model"
    ).rows()
    assert rows[0][:2] == ("model1", "X")
    assert rows[0][2] == "kmeans"
    assert rows[1][:2] == ("model2", "Y")
    assert rows[1][2] == "glm"


def test_fig10_catalog_query(benchmark, trained_models):
    km, glm = trained_models
    cluster = VerticaCluster(node_count=2)
    deploy_model(cluster, km, "model1", owner="X", description="clustering")
    deploy_model(cluster, glm, "model2", owner="Y", description="forecasting")
    result = benchmark(lambda: cluster.sql("SELECT * FROM R_Models"))
    assert len(result) == 2
    assert result.column_names == ["model", "owner", "type", "size", "description"]
