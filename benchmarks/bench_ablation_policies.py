"""Ablation: locality-preserving vs uniform policy under skewed segmentation.

The design tension of §3.2: locality minimizes transfer cost but inherits
the table's skew, producing straggler partitions that slow every subsequent
iteration; the uniform policy pays shuffling for balanced partitions.  This
benchmark creates a deliberately skewed table and measures a K-means
iteration after each policy.
"""

import numpy as np
import pytest

from repro.algorithms import hpdkmeans
from repro.dr import start_session
from repro.perfmodel import model_kmeans_iteration_dr
from repro.transfer import db2darray
from repro.vertica import SkewedSegmentation, VerticaCluster

ROWS = 48_000
FEATURES = 12
K = 16
SKEW = (6.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def skewed_cluster():
    rng = np.random.default_rng(30)
    columns = {"k": rng.integers(0, 1_000_000, ROWS)}
    names = []
    for j in range(FEATURES):
        names.append(f"c{j}")
        columns[f"c{j}"] = rng.normal(size=ROWS)
    cluster = VerticaCluster(node_count=3)
    cluster.create_table_like("skewed", columns, SkewedSegmentation(SKEW))
    cluster.bulk_load("skewed", columns)
    return cluster, names


def iteration_after_load(cluster, names, policy):
    with start_session(node_count=3, instances_per_node=1) as session:
        data = db2darray(cluster, "skewed", names, session, policy=policy,
                         chunk_rows=1024)
        init = np.asarray(data.get_partition(0))[:K].copy()
        model = hpdkmeans(data, K, initial_centers=init,
                          max_iterations=1, tolerance=0.0)
        rows = [shape[0] for shape in data.partition_shapes()]
    return model, rows


@pytest.mark.parametrize("policy", ["locality", "uniform"])
def test_ablation_policy_iteration(benchmark, skewed_cluster, policy):
    cluster, names = skewed_cluster
    model, rows = benchmark.pedantic(
        lambda: iteration_after_load(cluster, names, policy),
        rounds=2, iterations=1,
    )
    if policy == "locality":
        assert max(rows) > 3 * min(rows), "locality must inherit the skew"
    else:
        assert max(rows) < 1.3 * min(rows), "uniform must balance the skew"
    assert model.n_observations == ROWS


def test_ablation_straggler_cost_at_paper_scale():
    """The modelled iteration cost of a skew-3 partitioning vs balanced."""
    balanced = model_kmeans_iteration_dr(
        2.4e8, 100, 1000, cores=24, nodes=4).per_iteration_seconds
    skewed = model_kmeans_iteration_dr(
        2.4e8, 100, 1000, cores=24, nodes=4,
        skew=[3, 1, 1, 1]).per_iteration_seconds
    # The straggler holds 3/6 of the data instead of 1/4: ~2x slower.
    assert skewed / balanced == pytest.approx(2.0, rel=0.1)
