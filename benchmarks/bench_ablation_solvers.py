"""Ablation: the Figure 18 mechanism — QR decomposition vs Newton-Raphson.

Sweeps the coefficient count to show where each solver's cost lives: QR pays
O(n·p²) and materializes the decomposition; one Newton step on the normal
equations pays O(n·p) accumulation plus an O(p³) solve that is negligible
until p gets large.
"""

import numpy as np
import pytest

from repro.dr import start_session
from repro.algorithms import hpdglm
from repro.rbase import lm
from repro.workloads import make_regression

ROWS = 60_000


@pytest.mark.parametrize("features", [4, 32])
def test_ablation_qr_cost_by_width(benchmark, features):
    data = make_regression(ROWS, features, noise_scale=0.2, seed=32)
    fit = benchmark.pedantic(
        lambda: lm(data.features, data.responses), rounds=3, iterations=1)
    assert np.allclose(fit.coefficients[1:], data.true_coefficients, atol=0.05)


@pytest.mark.parametrize("features", [4, 32])
def test_ablation_newton_cost_by_width(benchmark, features):
    data = make_regression(ROWS, features, noise_scale=0.2, seed=32)
    with start_session(node_count=4, instances_per_node=1) as session:
        x = session.darray(npartitions=4)
        x.fill_from(data.features)
        y = session.darray(npartitions=4,
                           worker_assignment=[x.worker_of(i) for i in range(4)])
        boundaries = np.linspace(0, ROWS, 5).astype(int)
        for i in range(4):
            y.fill_partition(
                i, data.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = benchmark.pedantic(lambda: hpdglm(y, x), rounds=3, iterations=1)
    assert np.allclose(model.coefficients[1:], data.true_coefficients, atol=0.05)


def test_ablation_same_answer_different_algorithm():
    """The paper's observation: 'Even though the final answer is the same,
    these techniques result in different running time.'"""
    data = make_regression(20_000, 8, noise_scale=0.5, seed=33)
    qr_fit = lm(data.features, data.responses)
    with start_session(node_count=2, instances_per_node=1) as session:
        x = session.darray(npartitions=2)
        x.fill_from(data.features)
        y = session.darray(npartitions=2,
                           worker_assignment=[x.worker_of(i) for i in range(2)])
        y.fill_partition(0, data.responses[:10_000].reshape(-1, 1))
        y.fill_partition(1, data.responses[10_000:].reshape(-1, 1))
        newton = hpdglm(y, x)
    assert np.allclose(newton.coefficients, qr_fit.coefficients, atol=1e-8)
