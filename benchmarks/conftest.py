"""Shared benchmark fixtures and helpers.

Every benchmark has two layers:

* a **real run** through the functional engines at laptop scale, timed by
  pytest-benchmark, with the paper's qualitative shape asserted (who wins,
  does it scale, where does it plateau);
* the **paper-scale replay** through :mod:`repro.perfmodel`, attached to the
  benchmark's ``extra_info`` so the JSON output records the modelled
  paper-scale series next to the measured laptop-scale timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vertica import HashSegmentation, VerticaCluster


def build_numeric_table(node_count: int, rows: int, features: int, seed: int = 0,
                        table: str = "bench") -> tuple[VerticaCluster, list[str]]:
    """A hash-segmented numeric table for transfer/prediction benchmarks."""
    rng = np.random.default_rng(seed)
    columns = {"k": rng.integers(0, 1_000_000, rows)}
    names = []
    for j in range(features):
        name = f"c{j}"
        names.append(name)
        columns[name] = rng.normal(size=rows)
    cluster = VerticaCluster(node_count=node_count)
    cluster.create_table_like(table, columns, HashSegmentation("k"))
    cluster.bulk_load(table, columns)
    return cluster, names


@pytest.fixture(scope="session")
def paper_profile():
    from repro.perfmodel import SL390

    return SL390
