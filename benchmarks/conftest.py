"""Shared benchmark fixtures and helpers.

Every benchmark has two layers:

* a **real run** through the functional engines at laptop scale, timed by
  pytest-benchmark, with the paper's qualitative shape asserted (who wins,
  does it scale, where does it plateau);
* the **paper-scale replay** through :mod:`repro.perfmodel`, attached to the
  benchmark's ``extra_info`` so the JSON output records the modelled
  paper-scale series next to the measured laptop-scale timing.

Every benchmark run can also leave a trace artifact behind: the autouse
``export_trace`` fixture below collects the spans recorded by every live
tracer during the test and writes one chrome-trace-compatible JSON file per
benchmark under ``benchmarks/.traces/`` (override with ``REPRO_TRACE_DIR``,
disable with ``REPRO_TRACE_DIR=off``).  Load a file in ``about:tracing`` or
Perfetto, or read the ``spans``/``metrics`` keys directly — see
``docs/observability.md``.

Next to those traces, the autouse ``bench_datapoint`` fixture writes one
``BENCH_<figure>.json`` per benchmark module (``<figure>`` is the module
stem minus its ``bench_`` prefix): a list of datapoints carrying each
test's wall time and the non-zero metric deltas it produced, so a harness
can diff figures across runs without parsing chrome traces.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs.export import write_trace_artifact
from repro.obs.metrics import all_registries
from repro.obs.trace import all_tracers
from repro.vertica import HashSegmentation, VerticaCluster


@pytest.fixture(autouse=True)
def export_trace(request):
    """Write one trace artifact per benchmark (chrome-trace + spans + metrics).

    Collects the root spans every live tracer recorded *during* this test
    and bundles them with a snapshot of every live metrics registry.  Set
    ``REPRO_TRACE_DIR`` to choose the output directory, or ``off`` to skip.
    """
    trace_dir = os.environ.get("REPRO_TRACE_DIR", "")
    if trace_dir.lower() == "off":
        yield
        return
    t0 = time.perf_counter()
    yield
    roots = [
        root
        for tracer in all_tracers()
        for root in tracer.roots()
        if root.start >= t0
    ]
    if not roots:
        return
    out_dir = Path(trace_dir) if trace_dir else Path(__file__).parent / ".traces"
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    write_trace_artifact(
        out_dir / f"{name}.trace.json",
        roots,
        registries=all_registries(),
        meta={"test": request.node.nodeid},
    )


def _summed_metrics() -> dict[str, float]:
    """One flat name→value dict summed across every live registry."""
    totals: dict[str, float] = {}
    for registry in all_registries():
        for name, value in registry.snapshot().items():
            totals[name] = totals.get(name, 0.0) + value
    return totals


#: Figures whose BENCH_*.json has been truncated this session, so repeated
#: runs replace stale datapoints instead of appending to them forever.
_BENCH_RESET: set[Path] = set()


@pytest.fixture(autouse=True)
def bench_datapoint(request):
    """Append one datapoint to this module's ``BENCH_<figure>.json``.

    A datapoint is the test's wall time plus the non-zero metric deltas it
    produced (summed across every live registry; instruments created during
    the test count from zero).  Files land next to the chrome-trace
    artifacts and honor the same ``REPRO_TRACE_DIR`` override / ``off``
    switch.  Peak/watermark keys are deliberately kept: a drop in
    ``peak_batch_bytes`` between runs is as much a regression signal as a
    slowdown.
    """
    trace_dir = os.environ.get("REPRO_TRACE_DIR", "")
    if trace_dir.lower() == "off":
        yield
        return
    before = _summed_metrics()
    t0 = time.perf_counter()
    yield
    wall = time.perf_counter() - t0
    deltas = {}
    for name, value in sorted(_summed_metrics().items()):
        delta = value - before.get(name, 0.0)
        if delta:
            deltas[name] = delta
    figure = re.sub(r"^bench_", "", request.node.path.stem)
    out_dir = Path(trace_dir) if trace_dir else Path(__file__).parent / ".traces"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{figure}.json"
    if out_path in _BENCH_RESET and out_path.exists():
        doc = json.loads(out_path.read_text())
    else:
        doc = {"figure": figure, "datapoints": []}
        _BENCH_RESET.add(out_path)
    datapoint = {
        "test": request.node.nodeid,
        "wall_seconds": round(wall, 6),
        "metrics": deltas,
    }
    # Derived figures a benchmark computed itself (QPS, percentiles, ...)
    # arrive via pytest's record_property and ride along in the datapoint.
    if request.node.user_properties:
        properties = {
            key: value for key, value in request.node.user_properties
        }
        # Accuracy is a headline figure for approximate-query benchmarks:
        # promote it so harnesses can threshold it without digging into
        # per-test properties.
        if "realized_error" in properties:
            datapoint["realized_error"] = properties["realized_error"]
        datapoint["properties"] = properties
    doc["datapoints"].append(datapoint)
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def build_numeric_table(node_count: int, rows: int, features: int, seed: int = 0,
                        table: str = "bench") -> tuple[VerticaCluster, list[str]]:
    """A hash-segmented numeric table for transfer/prediction benchmarks."""
    rng = np.random.default_rng(seed)
    columns = {"k": rng.integers(0, 1_000_000, rows)}
    names = []
    for j in range(features):
        name = f"c{j}"
        names.append(name)
        columns[name] = rng.normal(size=rows)
    cluster = VerticaCluster(node_count=node_count)
    cluster.create_table_like(table, columns, HashSegmentation("k"))
    cluster.bulk_load(table, columns)
    return cluster, names


@pytest.fixture(scope="session")
def paper_profile():
    from repro.perfmodel import SL390

    return SL390
