"""Figure 12: ODBC vs Vertica Fast Transfer (5-node-cluster shape).

Real layer: the same table loaded through parallel ODBC and through VFT; the
paper's winner (VFT) must win here too, because VFT ships compressed column
blocks while ODBC round-trips delimited text.  Paper-scale layer: DES/model
series for 50-150 GB.
"""

import pytest

from benchmarks.conftest import build_numeric_table
from repro.dr import start_session
from repro.perfmodel import model_vft_transfer, simulate_odbc_transfer
from repro.transfer import db2darray, load_via_parallel_odbc

ROWS = 45_000
FEATURES = 4


@pytest.fixture(scope="module")
def setup():
    cluster, names = build_numeric_table(3, ROWS, FEATURES, seed=12)
    session = start_session(node_count=3, instances_per_node=2)
    yield cluster, names, session
    session.shutdown()


def test_fig12_odbc_load(benchmark, setup):
    cluster, names, session = setup
    result = benchmark(
        lambda: load_via_parallel_odbc(cluster, "bench", names, session,
                                       connections=6)
    )
    assert result.nrow == ROWS


def test_fig12_vft_load(benchmark, setup):
    cluster, names, session = setup
    result = benchmark(lambda: db2darray(cluster, "bench", names, session))
    assert result.nrow == ROWS
    benchmark.extra_info.update({
        f"paper_{gb}gb_{kind}_s": round(seconds, 1)
        for gb in (50, 100, 150)
        for kind, seconds in (
            ("odbc", simulate_odbc_transfer(gb, 5, 120).total_seconds),
            ("vft", model_vft_transfer(gb, 5, 24).total_seconds),
        )
    })


def test_fig12_shape_vft_faster_functionally(setup):
    """Measured at laptop scale: one VFT load vs one parallel-ODBC load."""
    import time

    cluster, names, session = setup
    start = time.perf_counter()
    db2darray(cluster, "bench", names, session)
    vft_seconds = time.perf_counter() - start
    start = time.perf_counter()
    load_via_parallel_odbc(cluster, "bench", names, session, connections=6)
    odbc_seconds = time.perf_counter() - start
    assert vft_seconds < odbc_seconds, (
        f"VFT ({vft_seconds:.3f}s) should beat ODBC ({odbc_seconds:.3f}s)"
    )


def test_fig12_shape_6x_at_paper_scale():
    odbc = simulate_odbc_transfer(150, 5, 120).total_seconds
    vft = model_vft_transfer(150, 5, 24).total_seconds
    assert 4 <= odbc / vft <= 10
    assert vft / 60 < 6  # "VFT can load ... 150 GB in less than 6 minutes"
