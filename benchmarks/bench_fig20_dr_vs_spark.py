"""Figure 20: K-means per iteration — Distributed R vs Spark, weak scaling.

Real layer: the *same* Lloyd kernel through both runtimes (hpdkmeans on the
DR engine vs spark_kmeans on the RDD engine) with identical initial centers;
the answers must match exactly (apples-to-apples), and the per-iteration
timings are measured.  Paper-scale layer: the 1/4/8-node, 60M-rows-per-node
series where DR is ~20% faster.
"""

import numpy as np
import pytest

from repro.algorithms import hpdkmeans
from repro.dr import start_session
from repro.perfmodel import (
    model_kmeans_iteration_blas,
    model_spark_kmeans_iteration,
)
from repro.spark import HdfsCluster, SparkContext, spark_kmeans
from repro.workloads import make_blobs

ROWS = 60_000
FEATURES = 20
K = 50


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(ROWS, FEATURES, K, seed=20)


@pytest.fixture(scope="module")
def init(dataset):
    rng = np.random.default_rng(1)
    return dataset.points[rng.choice(ROWS, K, replace=False)].copy()


def test_fig20_dr_iteration(benchmark, dataset, init):
    with start_session(node_count=4, instances_per_node=1) as session:
        data = session.darray(npartitions=4)
        data.fill_from(dataset.points)
        model = benchmark.pedantic(
            lambda: hpdkmeans(data, K, initial_centers=init,
                              max_iterations=1, tolerance=0.0),
            rounds=3, iterations=1,
        )
    assert model.iterations == 1
    benchmark.extra_info.update({
        f"paper_dr_{n}nodes_s": round(
            model_kmeans_iteration_blas(rows, 100, 1000, n), 1)
        for n, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8))
    })


def test_fig20_spark_iteration(benchmark, dataset, init):
    hdfs = HdfsCluster(datanode_count=4, replication=3)
    with SparkContext(hdfs, executors_per_node=1) as sc:
        sc.save_matrix("/km/fig20", dataset.points, npartitions=4)
        rdd = sc.matrix_from_hdfs("/km/fig20").cache()
        rdd.collect()  # materialize the cache: iteration time excludes load
        spark_model = benchmark.pedantic(
            lambda: spark_kmeans(rdd, K, initial_centers=init,
                                 max_iterations=1, tolerance=0.0),
            rounds=3, iterations=1,
        )
    # Apples-to-apples: same kernel, same init => identical first iteration.
    with start_session(node_count=4, instances_per_node=1) as session:
        data = session.darray(npartitions=4)
        data.fill_from(dataset.points)
        dr_model = hpdkmeans(data, K, initial_centers=init,
                             max_iterations=1, tolerance=0.0)
    assert spark_model.inertia == pytest.approx(dr_model.inertia)
    assert np.allclose(spark_model.centers, dr_model.centers, atol=1e-9)
    benchmark.extra_info.update({
        f"paper_spark_{n}nodes_s": round(
            model_spark_kmeans_iteration(rows, 100, 1000, n), 1)
        for n, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8))
    })


def test_fig20_shape_dr_20_percent_faster_and_flat():
    for nodes, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8)):
        dr = model_kmeans_iteration_blas(rows, 100, 1000, nodes)
        spark = model_spark_kmeans_iteration(rows, 100, 1000, nodes)
        assert 1.1 <= spark / dr <= 1.5, "DR about 20% faster"
    dr_series = [model_kmeans_iteration_blas(rows, 100, 1000, n)
                 for n, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8))]
    assert max(dr_series) / min(dr_series) < 1.01, "weak scaling flat"
