"""Ablation: UDF instance fan-out for in-database prediction.

Sweeps the per-node instance count through the DES of the prediction
fan-out (Figs 15/16 mechanism): under-fanning wastes cores, over-fanning
only adds per-instance model-load overhead — quantifying why the planner
bounds `PARTITION BEST` parallelism by available resources.
"""

import pytest

from repro.perfmodel import model_in_db_prediction, simulate_prediction_fanout

INSTANCE_SWEEP = (1, 2, 4, 8, 12, 24, 48)


def test_ablation_fanout_sweep(benchmark):
    def sweep():
        return {
            instances: simulate_prediction_fanout(
                1e9, "kmeans", 5, instances_per_node=instances).total_seconds
            for instances in INSTANCE_SWEEP
        }

    results = benchmark(sweep)
    benchmark.extra_info.update(
        {f"fanout_{k}_s": round(v, 1) for k, v in results.items()})
    # Monotone improvement up to the physical core count...
    assert results[1] > results[4] > results[12]
    # ...then flat (within model-load noise).
    assert results[48] < results[12] * 1.1


def test_ablation_fanout_matches_calibrated_model_at_cores():
    analytic = model_in_db_prediction(1e9, "glm", 5).total_seconds
    des = simulate_prediction_fanout(
        1e9, "glm", 5, instances_per_node=12).total_seconds
    assert des == pytest.approx(analytic, rel=0.05)


def test_ablation_model_load_dominates_small_tables():
    """On small tables, fan-out cost is all model deserialization — the
    reason the deployed-model cache exists."""
    cached = simulate_prediction_fanout(
        1e5, "glm", 5, instances_per_node=12, model_load_s=0.05)
    uncached = simulate_prediction_fanout(
        1e5, "glm", 5, instances_per_node=12, model_load_s=5.0)
    # The scan component (everything past query planning) is dominated by
    # the per-instance model load when the table is small.
    assert uncached.scan_seconds > 10 * cached.scan_seconds
