"""Figure 15: scalability of in-database K-means prediction.

Real layer: ``kmeansPredict`` over tables of growing size; throughput must
be near-linear in rows.  Paper-scale layer: 10M-1B rows on 5 nodes.
"""

import numpy as np
import pytest

from benchmarks.conftest import build_numeric_table
from repro.algorithms import hpdkmeans
from repro.deploy import deploy_model
from repro.dr import start_session
from repro.perfmodel import model_in_db_prediction
from repro.workloads import make_blobs

FEATURES = 6


def make_scoring_setup(rows: int):
    cluster, names = build_numeric_table(3, rows, FEATURES, seed=15)
    dataset = make_blobs(3000, FEATURES, 8, seed=15)
    with start_session(node_count=3, instances_per_node=2) as session:
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        model = hpdkmeans(data, k=8, seed=0, max_iterations=10)
    deploy_model(cluster, model, "km")
    query = (
        f"SELECT kmeansPredict({', '.join(names)} USING PARAMETERS model='km') "
        "OVER (PARTITION BEST) FROM bench"
    )
    return cluster, query


@pytest.mark.parametrize("rows", [20_000, 80_000])
def test_fig15_kmeans_predict(benchmark, rows):
    cluster, query = make_scoring_setup(rows)
    result = benchmark.pedantic(lambda: cluster.sql(query), rounds=3, iterations=1)
    assert len(result) == rows
    assert set(np.unique(result.column("cluster"))) <= set(range(8))
    if rows == 80_000:
        benchmark.extra_info.update({
            f"paper_{int(r):d}rows_s": round(
                model_in_db_prediction(r, "kmeans", 5).total_seconds, 1)
            for r in (1e7, 1e8, 1e9)
        })


def test_fig15_shape_near_linear_scaling():
    import time

    times = {}
    for rows in (20_000, 80_000):
        cluster, query = make_scoring_setup(rows)
        cluster.sql(query)  # warm the model cache
        start = time.perf_counter()
        cluster.sql(query)
        times[rows] = time.perf_counter() - start
    ratio = times[80_000] / times[20_000]
    assert ratio < 8, f"4x rows should cost ~4x, got {ratio:.1f}x"
    # paper-scale: 1B rows in 318 s on 5 nodes
    assert model_in_db_prediction(1e9, "kmeans", 5).total_seconds < 400
