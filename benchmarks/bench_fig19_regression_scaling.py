"""Figure 19: distributed regression weak scaling (proportional data/node).

Real layer: hpdglm at 1, 2, and 4 workers with proportional rows; accuracy
against the generating coefficients is asserted (the paper's methodology),
and per-iteration laptop time should stay roughly flat.  Paper-scale layer:
the 30M-rows-per-node, 100-feature series.
"""

import numpy as np
import pytest

from repro.algorithms import hpdglm
from repro.dr import start_session
from repro.perfmodel import model_regression_dr
from repro.workloads import make_regression

ROWS_PER_NODE = 15_000
FEATURES = 20


def run_weak_scaling(nodes: int):
    rows = ROWS_PER_NODE * nodes
    data = make_regression(rows, FEATURES, noise_scale=0.1, seed=19)
    with start_session(node_count=nodes, instances_per_node=1) as session:
        x = session.darray(npartitions=nodes)
        x.fill_from(data.features)
        y = session.darray(npartitions=nodes,
                           worker_assignment=[x.worker_of(i) for i in range(nodes)])
        boundaries = np.linspace(0, rows, nodes + 1).astype(int)
        for i in range(nodes):
            y.fill_partition(
                i, data.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = hpdglm(y, x)
    assert np.allclose(model.coefficients[1:], data.true_coefficients, atol=0.02), \
        "synthetic-coefficient accuracy check (the paper's methodology)"
    return model


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_fig19_weak_scaling(benchmark, nodes):
    model = benchmark.pedantic(lambda: run_weak_scaling(nodes),
                               rounds=2, iterations=1)
    assert model.converged
    if nodes == 4:
        benchmark.extra_info.update({
            f"paper_{n}nodes_iteration_s": round(
                model_regression_dr(rows, 100, cores=24, nodes=n,
                                    iterations=1).per_iteration_seconds, 1)
            for n, rows in ((1, 3e7), (4, 1.2e8), (8, 2.4e8))
        })


def test_fig19_shape_flat_iterations_and_fast_convergence():
    times = [
        model_regression_dr(rows, 100, cores=24, nodes=n,
                            iterations=1).per_iteration_seconds
        for n, rows in ((1, 3e7), (4, 1.2e8), (8, 2.4e8))
    ]
    assert max(times) / min(times) < 1.05, "weak scaling must be flat"
    assert max(times) < 120, "paper: each iteration < 2 minutes"
    convergence = model_regression_dr(2.4e8, 100, cores=24, nodes=8,
                                      iterations=2).total_seconds
    assert convergence < 300, "paper: converges in ~4 minutes (2 iterations)"
