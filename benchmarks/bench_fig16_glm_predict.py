"""Figure 16: scalability of in-database linear-regression prediction.

Real layer: ``glmPredict`` over tables of growing size, validated against
local predictions.  Paper-scale layer: 10M-1B rows on 5 nodes; GLM scoring
is cheaper per row than K-means (Fig 15 vs 16).
"""

import numpy as np
import pytest

from benchmarks.conftest import build_numeric_table
from repro.algorithms import hpdglm
from repro.deploy import deploy_model
from repro.dr import start_session
from repro.perfmodel import model_in_db_prediction
from repro.workloads import make_regression

FEATURES = 6


def make_scoring_setup(rows: int):
    cluster, names = build_numeric_table(3, rows, FEATURES, seed=16)
    data = make_regression(3000, FEATURES, seed=16)
    with start_session(node_count=3, instances_per_node=2) as session:
        x = session.darray(npartitions=3)
        x.fill_from(data.features)
        y = session.darray(npartitions=3,
                           worker_assignment=[x.worker_of(i) for i in range(3)])
        boundaries = np.linspace(0, 3000, 4).astype(int)
        for i in range(3):
            y.fill_partition(
                i, data.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = hpdglm(y, x)
    deploy_model(cluster, model, "reg")
    query = (
        f"SELECT glmPredict({', '.join(names)} USING PARAMETERS model='reg') "
        "OVER (PARTITION BEST) FROM bench"
    )
    return cluster, names, model, query


@pytest.mark.parametrize("rows", [20_000, 80_000])
def test_fig16_glm_predict(benchmark, rows):
    cluster, names, model, query = make_scoring_setup(rows)
    result = benchmark.pedantic(lambda: cluster.sql(query), rounds=3, iterations=1)
    assert len(result) == rows
    table = cluster.catalog.get_table("bench").scan_all(names)
    local = model.predict(np.column_stack([table[n] for n in names]))
    assert np.allclose(np.sort(result.column("prediction")), np.sort(local))
    if rows == 80_000:
        benchmark.extra_info.update({
            f"paper_{int(r):d}rows_s": round(
                model_in_db_prediction(r, "glm", 5).total_seconds, 1)
            for r in (1e7, 1e8, 1e9)
        })


def test_fig16_shape_glm_cheaper_than_kmeans_and_linear():
    glm_1b = model_in_db_prediction(1e9, "glm", 5).total_seconds
    km_1b = model_in_db_prediction(1e9, "kmeans", 5).total_seconds
    assert glm_1b < km_1b
    assert glm_1b < 250  # paper: 206 s
    scan_ratio = (model_in_db_prediction(1e9, "glm", 5).scan_seconds
                  / model_in_db_prediction(1e8, "glm", 5).scan_seconds)
    assert scan_ratio == pytest.approx(10.0)
