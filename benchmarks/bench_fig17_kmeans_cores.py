"""Figure 17: K-means per-iteration time, stock R vs Distributed R, by cores.

Real layer: one Lloyd iteration sequentially (r_kmeans) vs partition-parallel
(hpdkmeans on a multi-instance session) on the same data and initial centers
— both must compute the *same* iteration, so inertia agrees exactly.
Paper-scale layer: the 1-24 core series (R flat at ~35 min, DR scaling to
<4 min, plateau past 12 physical cores).
"""

import numpy as np
import pytest

from repro.algorithms import hpdkmeans
from repro.dr import start_session
from repro.perfmodel import model_kmeans_iteration_dr, model_kmeans_iteration_r
from repro.rbase import r_kmeans
from repro.workloads import make_blobs

ROWS = 60_000
FEATURES = 20
K = 50


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(ROWS, FEATURES, K, seed=17)


@pytest.fixture(scope="module")
def init(dataset):
    rng = np.random.default_rng(0)
    return dataset.points[rng.choice(ROWS, K, replace=False)].copy()


def test_fig17_r_single_iteration(benchmark, dataset, init):
    model = benchmark.pedantic(
        lambda: r_kmeans(dataset.points, K, initial_centers=init,
                         max_iterations=1, tolerance=0.0),
        rounds=3, iterations=1,
    )
    assert model.iterations == 1
    benchmark.extra_info["paper_r_iteration_s"] = round(
        model_kmeans_iteration_r(1e6, 100, 1000).per_iteration_seconds, 1)


def test_fig17_dr_single_iteration(benchmark, dataset, init):
    with start_session(node_count=4, instances_per_node=1) as session:
        data = session.darray(npartitions=4)
        data.fill_from(dataset.points)
        model = benchmark.pedantic(
            lambda: hpdkmeans(data, K, initial_centers=init,
                              max_iterations=1, tolerance=0.0),
            rounds=3, iterations=1,
        )
    sequential = r_kmeans(dataset.points, K, initial_centers=init,
                          max_iterations=1, tolerance=0.0)
    assert model.inertia == pytest.approx(sequential.inertia)
    benchmark.extra_info.update({
        f"paper_dr_{cores}cores_s": round(
            model_kmeans_iteration_dr(1e6, 100, 1000,
                                      cores=cores).per_iteration_seconds, 1)
        for cores in (1, 2, 4, 8, 12, 16, 24)
    })


def test_fig17_shape_9x_and_plateau():
    r_time = model_kmeans_iteration_r(1e6, 100, 1000).per_iteration_seconds
    dr_12 = model_kmeans_iteration_dr(1e6, 100, 1000,
                                      cores=12).per_iteration_seconds
    dr_24 = model_kmeans_iteration_dr(1e6, 100, 1000,
                                      cores=24).per_iteration_seconds
    assert 7 <= r_time / dr_12 <= 12       # "9x speedup over stock R"
    assert dr_24 == pytest.approx(dr_12)   # hyper-threads don't help
    assert dr_12 < 4 * 60                  # "less than 4 minutes"
    assert r_time > 30 * 60                # "approximately 35 minutes"
