"""Figure 1: extracting data from a database over ODBC is slow.

Real layer: load the same table through one ODBC connection vs many parallel
connections vs VFT; single-connection must be the slowest path.  Paper-scale
layer: the DES replays 50/100/150 GB on 5 nodes.
"""

import pytest

from benchmarks.conftest import build_numeric_table
from repro.dr import start_session
from repro.perfmodel import simulate_odbc_transfer
from repro.transfer import load_via_parallel_odbc, load_via_single_odbc

ROWS = 24_000
FEATURES = 4


@pytest.fixture(scope="module")
def setup():
    cluster, names = build_numeric_table(3, ROWS, FEATURES, seed=1)
    session = start_session(node_count=3, instances_per_node=2)
    yield cluster, names, session
    session.shutdown()


def _paper_scale_series():
    return {
        f"odbc_{conns}conn_{gb}gb_s": round(
            simulate_odbc_transfer(gb, 5, conns).total_seconds, 1
        )
        for gb in (50, 100, 150)
        for conns in (1, 120)
    }


def test_fig01_single_odbc_connection(benchmark, setup):
    cluster, names, session = setup

    def run():
        return load_via_single_odbc(cluster, "bench", names, session)

    result = benchmark(run)
    assert result.nrow == ROWS
    benchmark.extra_info.update(_paper_scale_series())


def test_fig01_parallel_odbc_connections(benchmark, setup):
    cluster, names, session = setup

    def run():
        return load_via_parallel_odbc(cluster, "bench", names, session,
                                      connections=6)

    result = benchmark(run)
    assert result.nrow == ROWS


def test_fig01_shape_single_slower_than_parallel_at_paper_scale():
    single = simulate_odbc_transfer(50, 5, 1).total_seconds
    parallel = simulate_odbc_transfer(50, 5, 120).total_seconds
    assert single > parallel
    # Figure 1's point: even 120-way parallel ODBC takes ~40 min at 150 GB.
    assert simulate_odbc_transfer(150, 5, 120).minutes > 25
