"""Ablation: the wall-clock cost of recovering from injected faults.

Measures a VFT load (a) failure-free, (b) with one node killed mid-stream
(whole-transfer retry + buddy failover + sender-side frame dedup), and
(c) with a stalled frame forcing an in-place resend — quantifying what the
recovery machinery documented in ``docs/fault_tolerance.md`` costs relative
to the healthy path it protects.
"""

import numpy as np
import pytest

from repro.dr import start_session
from repro.faults import FaultKind, FaultPlan, RetryPolicy
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster

ROWS = 40_000
FEATURES = 4
SEED = 7


def build():
    rng = np.random.default_rng(70)
    columns = {"k": rng.integers(0, 10**6, ROWS)}
    names = []
    for j in range(FEATURES):
        names.append(f"c{j}")
        columns[f"c{j}"] = rng.normal(size=ROWS)
    cluster = VerticaCluster(node_count=3)
    cluster.create_table_like("t", columns, HashSegmentation("k"),
                              k_safety=1)
    cluster.bulk_load("t", columns)
    return cluster, names


@pytest.mark.parametrize("scenario", ["healthy", "node_crash", "stall"])
def test_ablation_vft_recovery_overhead(benchmark, scenario):
    _, names = build()

    def plan_for(cluster):
        if scenario == "node_crash":
            return FaultPlan.single(
                "vft.send_chunk", FaultKind.NODE_CRASH,
                match={"node": 1}, after=2, seed=SEED)
        if scenario == "stall":
            return FaultPlan.single(
                "vft.send_chunk", FaultKind.STALL,
                match={"node": 1}, stall_seconds=0.02, seed=SEED)
        return None

    def run():
        # Each round gets a fresh cluster: crashes are one-way.
        cluster, _ = build()
        plan = plan_for(cluster)
        if plan is not None:
            cluster.install_fault_plan(plan)
        retry = (RetryPolicy(send_timeout=0.01, seed=SEED)
                 if scenario == "stall" else RetryPolicy(seed=SEED))
        with start_session(node_count=3, instances_per_node=1) as session:
            # Small frames => many frames per node, so mid-stream kills land.
            array = db2darray(cluster, "t", names, session,
                              chunk_rows=2048, retry=retry)
            collected = array.collect()
        return cluster, plan, collected

    cluster, plan, collected = benchmark.pedantic(run, rounds=2, iterations=1)
    assert collected.shape == (ROWS, FEATURES)
    if scenario == "healthy":
        assert cluster.telemetry.get("failovers") == 0
    else:
        assert plan.fired("vft.send_chunk")
    if scenario == "node_crash":
        assert cluster.telemetry.get("failovers") >= 1
        assert cluster.telemetry.get("vft_frames_deduped") >= 1
    if scenario == "stall":
        assert cluster.telemetry.get("transfer_retries") >= 1


def test_ablation_failfast_when_unrecoverable(benchmark):
    """The double-failure path must cost ~nothing: no retry rounds."""
    from repro.errors import ExecutionError

    def run():
        cluster, names = build()
        cluster.fail_node(1)
        cluster.fail_node(2)
        with start_session(node_count=3, instances_per_node=1) as session:
            with pytest.raises(ExecutionError, match="both down"):
                db2darray(cluster, "t", names, session,
                          retry=RetryPolicy(seed=SEED))
        return cluster

    benchmark.pedantic(run, rounds=2, iterations=1)
