"""Approximate query processing: sampled aggregates vs exact scans.

The paper's predictive pipeline leans on fast in-database aggregation;
this figure measures what the AQP subsystem buys on that path.  A 1%
uniform sample answers ``WITHIN 5% ERROR`` aggregates by scanning ~1% of
the rows and scaling up with Horvitz–Thompson weights — the headline
datapoint asserts the approximate path is at least 5× faster than the
exact scan while its realized relative error stays inside the requested
bound (and the reported CI covers the exact answer).  A second datapoint
measures maintenance: folding a trickle delta into a stored sample vs
rebuilding it from scratch.

Each datapoint lands in ``BENCH_aqp.json`` with the realized error
promoted to a top-level field (see ``conftest.bench_datapoint``), so a
harness can threshold accuracy without digging into properties.
"""

from __future__ import annotations

import time

from benchmarks.conftest import build_numeric_table

from repro.aqp.refresh import refresh_sample

ROWS = 400_000
NODES = 3
RATE_PERCENT = 1
ERROR_BOUND = 0.05
REPS = 10

EXACT_SQL = "SELECT SUM(k) FROM bench"
APPROX_SQL = f"SELECT SUM(k) FROM bench WITHIN {int(ERROR_BOUND * 100)}% ERROR"


def _timed(fn, reps=REPS):
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


def test_aqp_speedup_at_one_percent_sampling(record_property):
    cluster, _ = build_numeric_table(NODES, ROWS, features=1)
    cluster.sql(
        f"CREATE SAMPLE s ON bench UNIFORM RATE {RATE_PERCENT}% SEED 2")

    exact = float(cluster.sql(EXACT_SQL).scalar())
    approx = cluster.sql(APPROX_SQL)
    estimate = float(approx.column("estimate")[0])
    ci_low = float(approx.column("ci_low")[0])
    ci_high = float(approx.column("ci_high")[0])
    fraction = float(approx.column("sample_fraction")[0])
    assert fraction < 1.0, "the bound was not met: answer fell back to exact"

    realized_error = abs(estimate - exact) / abs(exact)
    assert realized_error <= ERROR_BOUND
    assert ci_low <= exact <= ci_high

    exact_wall = _timed(lambda: cluster.sql(EXACT_SQL))
    approx_wall = _timed(lambda: cluster.sql(APPROX_SQL))
    speedup = exact_wall / approx_wall
    assert speedup >= 5.0, (
        f"approximate path only {speedup:.1f}x faster "
        f"({approx_wall * 1e3:.1f}ms vs {exact_wall * 1e3:.1f}ms exact)")

    record_property("rows", ROWS)
    record_property("sample_rate", RATE_PERCENT / 100.0)
    record_property("sample_fraction", round(fraction, 6))
    record_property("nominal_error_bound", ERROR_BOUND)
    record_property("realized_error", round(realized_error, 6))
    record_property("ci_covers_exact", bool(ci_low <= exact <= ci_high))
    record_property("exact_ms", round(exact_wall * 1e3, 3))
    record_property("approx_ms", round(approx_wall * 1e3, 3))
    record_property("speedup", round(speedup, 2))


def test_aqp_incremental_fold_beats_rebuild(record_property):
    cluster, _ = build_numeric_table(NODES, ROWS // 2, features=1)
    cluster.sql(
        f"CREATE SAMPLE s ON bench UNIFORM RATE {RATE_PERCENT}% SEED 2")
    refresh_sample(cluster, "s")  # absorb the build's own commit epoch
    table = cluster.catalog.get_table("bench")
    import numpy as np

    delta = 2_000
    table.insert({
        "k": np.arange(delta, dtype=np.int64),
        "c0": np.zeros(delta),
    }, direct=False)

    t0 = time.perf_counter()
    result = refresh_sample(cluster, "s")
    fold_wall = time.perf_counter() - t0
    assert result.strategy == "incremental"

    t0 = time.perf_counter()
    cluster.sql(
        f"CREATE SAMPLE s2 ON bench UNIFORM RATE {RATE_PERCENT}% SEED 2")
    rebuild_wall = time.perf_counter() - t0

    # Folding reads only the delta; rebuilding scans the whole base table.
    assert fold_wall < rebuild_wall
    record_property("base_rows", ROWS // 2)
    record_property("delta_rows", delta)
    record_property("fold_ms", round(fold_wall * 1e3, 3))
    record_property("rebuild_ms", round(rebuild_wall * 1e3, 3))
    record_property("fold_speedup", round(rebuild_wall / fold_wall, 2))
