"""Ablation: zone-map predicate pushdown on selective scans.

Measures a selective range query over a time-clustered table against the
same query over shuffled data (where zone maps overlap everywhere and prune
nothing) — quantifying what block-level min/max metadata buys a columnar
scan before any decompression happens.
"""

import numpy as np
import pytest

from repro.vertica import VerticaCluster

ROWS = 200_000
BATCH = 10_000


def build(clustered: bool):
    cluster = VerticaCluster(node_count=2)
    cluster.sql("CREATE TABLE events (ts INT, v FLOAT)")
    if clustered:
        order = np.arange(ROWS)
    else:
        order = np.random.default_rng(81).permutation(ROWS)
    for start in range(0, ROWS, BATCH):
        ts = order[start:start + BATCH]
        cluster.bulk_load("events", {"ts": ts, "v": ts * 0.5})
    return cluster


@pytest.mark.parametrize("layout", ["clustered", "shuffled"])
def test_ablation_selective_scan_by_layout(benchmark, layout):
    cluster = build(clustered=(layout == "clustered"))
    query = "SELECT SUM(v) FROM events WHERE ts >= 190000"
    expected = float((np.arange(190_000, ROWS) * 0.5).sum())

    result = benchmark.pedantic(lambda: cluster.sql(query),
                                rounds=5, iterations=1)
    assert result.scalar() == pytest.approx(expected)
    benchmark.extra_info["rowgroups_pruned"] = int(
        cluster.telemetry.get("rowgroups_pruned"))


def test_ablation_pruning_skips_most_rowgroups_when_clustered():
    clustered = build(clustered=True)
    shuffled = build(clustered=False)
    query = "SELECT COUNT(*) FROM events WHERE ts >= 190000"
    assert clustered.sql(query).scalar() == shuffled.sql(query).scalar() == 10_000
    assert clustered.telemetry.get("rowgroups_pruned") >= 30
    assert shuffled.telemetry.get("rowgroups_pruned") == 0


def test_ablation_clustered_scan_faster():
    import time

    clustered = build(clustered=True)
    shuffled = build(clustered=False)
    query = "SELECT SUM(v) FROM events WHERE ts >= 195000"
    for cluster in (clustered, shuffled):
        cluster.sql(query)  # warm up

    start = time.perf_counter()
    for _ in range(3):
        clustered.sql(query)
    clustered_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(3):
        shuffled.sql(query)
    shuffled_seconds = time.perf_counter() - start
    assert clustered_seconds < shuffled_seconds, (
        f"pruned scan ({clustered_seconds:.3f}s) should beat full scan "
        f"({shuffled_seconds:.3f}s)"
    )
