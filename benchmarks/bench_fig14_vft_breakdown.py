"""Figure 14: where VFT time goes (DB part vs R part) as R instances grow.

Real layer: VFT loads with 1 vs 4 R instances per worker — more instances
must not be slower (the conversion stage parallelizes).  Paper-scale layer:
the 2-24 instance breakdown at 400 GB / 12 nodes.
"""

import pytest

from benchmarks.conftest import build_numeric_table
from repro.dr import start_session
from repro.perfmodel import model_vft_transfer
from repro.transfer import db2darray
from repro.vertica import PipelineConfig

ROWS = 45_000
FEATURES = 6


@pytest.fixture(scope="module")
def cluster_and_names():
    return build_numeric_table(3, ROWS, FEATURES, seed=14)


@pytest.mark.parametrize("instances", [1, 4])
def test_fig14_vft_load_by_instances(benchmark, cluster_and_names, instances):
    cluster, names = cluster_and_names
    with start_session(node_count=3, instances_per_node=instances) as session:
        result = benchmark.pedantic(
            lambda: db2darray(cluster, "bench", names, session, chunk_rows=2048),
            rounds=3, iterations=1,
        )
        assert result.nrow == ROWS
    if instances == 4:
        benchmark.extra_info.update({
            f"paper_inst{i}_{part}_s": round(value, 1)
            for i in (2, 4, 8, 12, 16, 24)
            for part, value in (
                ("db", model_vft_transfer(400, 12, i).db_seconds),
                ("r", model_vft_transfer(400, 12, i).r_seconds),
            )
        })
        # Before/after the streaming-pipeline refactor: peak in-flight bytes
        # for the same load under eager (materialize each node's segment)
        # vs the default streaming execution.
        benchmark.extra_info.update(_pipeline_peak_by_mode(instances))


def _pipeline_peak_by_mode(instances: int) -> dict[str, int]:
    peaks = {}
    for mode in ("eager", "streaming"):
        cluster, names = build_numeric_table(3, ROWS, FEATURES, seed=14)
        cluster.pipeline = PipelineConfig(mode=mode)
        with start_session(node_count=3, instances_per_node=instances) as session:
            db2darray(cluster, "bench", names, session, chunk_rows=2048)
        peaks[f"{mode}_inflight_bytes_peak"] = int(
            cluster.telemetry.get("pipeline_inflight_bytes_peak"))
    assert 0 < peaks["streaming_inflight_bytes_peak"] < peaks["eager_inflight_bytes_peak"]
    return peaks


def test_fig14_shape_db_constant_r_shrinks():
    results = {i: model_vft_transfer(400, 12, i) for i in (2, 4, 8, 12, 16, 24)}
    db_parts = [r.db_seconds for r in results.values()]
    assert max(db_parts) - min(db_parts) < 1e-9, "DB part must be constant"
    assert results[2].r_seconds > 4 * results[12].r_seconds
    # "almost half of the transfer time" in R at 2 instances:
    assert results[2].r_seconds / results[2].total_seconds > 0.35
    # plateau past the physical core count:
    assert results[24].r_seconds == pytest.approx(results[12].r_seconds)
