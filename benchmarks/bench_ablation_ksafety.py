"""Ablation: the cost of fault tolerance (k-safety buddy projections).

Measures (a) the load overhead of writing buddy replicas, (b) scan time on
the healthy path vs the failover path, and (c) the storage doubling —
quantifying what "the same fault-tolerance guarantees as Vertica tables"
costs the transfer pipeline.
"""

import numpy as np
import pytest

from repro.dr import start_session
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster

ROWS = 40_000
FEATURES = 4


def build(k_safety: int):
    rng = np.random.default_rng(70)
    columns = {"k": rng.integers(0, 10**6, ROWS)}
    names = []
    for j in range(FEATURES):
        names.append(f"c{j}")
        columns[f"c{j}"] = rng.normal(size=ROWS)
    cluster = VerticaCluster(node_count=3)
    cluster.create_table_like("t", columns, HashSegmentation("k"),
                              k_safety=k_safety)
    return cluster, columns, names


@pytest.mark.parametrize("k_safety", [0, 1])
def test_ablation_load_cost_of_ksafety(benchmark, k_safety):
    cluster, columns, _ = build(k_safety)

    def run():
        fresh, cols, _ = build(k_safety)
        fresh.bulk_load("t", cols)
        return fresh

    loaded = benchmark.pedantic(run, rounds=3, iterations=1)
    assert loaded.sql("SELECT COUNT(*) FROM t").scalar() == ROWS


@pytest.mark.parametrize("failed", [False, True])
def test_ablation_scan_healthy_vs_failover(benchmark, failed):
    cluster, columns, names = build(k_safety=1)
    cluster.bulk_load("t", columns)
    if failed:
        cluster.fail_node(1)

    result = benchmark.pedantic(
        lambda: cluster.sql("SELECT SUM(c0) FROM t"), rounds=3, iterations=1)
    assert result.scalar() == pytest.approx(columns["c0"].sum())
    if failed:
        assert cluster.telemetry.get("buddy_scans") > 0


def test_ablation_vft_under_failover(benchmark):
    cluster, columns, names = build(k_safety=1)
    cluster.bulk_load("t", columns)
    cluster.fail_node(0)
    with start_session(node_count=3, instances_per_node=2) as session:
        array = benchmark.pedantic(
            lambda: db2darray(cluster, "t", names, session),
            rounds=2, iterations=1)
        assert array.nrow == ROWS


def test_ablation_storage_doubles():
    plain_cluster, columns, _ = build(k_safety=0)
    plain_cluster.bulk_load("t", columns)
    safe_cluster, columns, _ = build(k_safety=1)
    safe_cluster.bulk_load("t", columns)
    plain = plain_cluster.catalog.get_table("t")
    safe = safe_cluster.catalog.get_table("t")
    plain_bytes = sum(s.compressed_size for s in plain.segments)
    safe_bytes = (sum(s.compressed_size for s in safe.segments)
                  + sum(s.compressed_size for s in safe.buddy_segments))
    assert safe_bytes == pytest.approx(2 * plain_bytes, rel=0.01)
