"""Figure 21: end-to-end K-means — load + iterate for each system.

Real layer: the full pipeline on each substrate: (a) VFT out of the database
into Distributed R, then one K-means iteration; (b) Spark loading the same
matrix from HDFS, then one iteration; (c) Distributed R loading from local
ext4 files.  Paper-scale layer: the 240M x 100 / 4-node comparison where the
systems roughly tie.
"""

import numpy as np
import pytest

from benchmarks.conftest import build_numeric_table
from repro.algorithms import hpdkmeans
from repro.dr import start_session
from repro.perfmodel import model_end_to_end_kmeans
from repro.spark import HdfsCluster, SparkContext, spark_kmeans
from repro.transfer import db2darray

ROWS = 30_000
FEATURES = 10
K = 20


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(21)
    return rng.normal(size=(ROWS, FEATURES))


@pytest.fixture(scope="module")
def init(matrix):
    return matrix[:K].copy()


def test_fig21_vertica_dr_end_to_end(benchmark, matrix, init):
    cluster, names = build_numeric_table(4, ROWS, FEATURES, seed=21)

    def run():
        with start_session(node_count=4, instances_per_node=2) as session:
            data = db2darray(cluster, "bench", names, session)
            return hpdkmeans(data, K, initial_centers=init,
                             max_iterations=1, tolerance=0.0)

    model = benchmark.pedantic(run, rounds=2, iterations=1)
    assert model.n_observations == ROWS
    systems = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180, iterations=1)
    benchmark.extra_info.update({
        f"paper_{name}_{'load' if part == 0 else 'total'}_s": round(value, 1)
        for name, outcome in systems.items()
        for part, value in enumerate((outcome.load_seconds, outcome.total_seconds))
    })


def test_fig21_spark_hdfs_end_to_end(benchmark, matrix, init):
    hdfs = HdfsCluster(datanode_count=4, replication=3)
    with SparkContext(hdfs, executors_per_node=2) as sc:
        sc.save_matrix("/fig21/data", matrix, npartitions=4)

        def run():
            rdd = sc.matrix_from_hdfs("/fig21/data")
            return spark_kmeans(rdd, K, initial_centers=init,
                                max_iterations=1, tolerance=0.0)

        model = benchmark.pedantic(run, rounds=2, iterations=1)
    assert model.n_observations == ROWS


def test_fig21_dr_ext4_end_to_end(benchmark, matrix, init, tmp_path_factory):
    directory = tmp_path_factory.mktemp("ext4")
    boundaries = np.linspace(0, ROWS, 5).astype(int)
    paths = []
    for i in range(4):
        path = directory / f"part{i}.npy"
        np.save(path, matrix[boundaries[i]:boundaries[i + 1]])
        paths.append(path)

    def run():
        with start_session(node_count=4, instances_per_node=2) as session:
            data = session.darray(npartitions=4)
            for i, path in enumerate(paths):
                data.fill_partition(i, np.load(path))
            return hpdkmeans(data, K, initial_centers=init,
                             max_iterations=1, tolerance=0.0)

    model = benchmark.pedantic(run, rounds=2, iterations=1)
    assert model.n_observations == ROWS


def test_fig21_shape_near_tie_and_load_ordering():
    systems = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180, iterations=1)
    vertica, spark, ext4 = (systems["vertica+dr"], systems["spark+hdfs"],
                            systems["dr+ext4"])
    # Loads: ext4 < HDFS < Vertica ("higher overheads involved in extracting
    # data from distributed filesystems and databases").
    assert ext4.load_seconds < spark.load_seconds < vertica.load_seconds
    # ext4 about 2x faster than HDFS and 3x faster than Vertica:
    assert 1.5 <= spark.load_seconds / ext4.load_seconds <= 3.0
    assert 2.0 <= vertica.load_seconds / ext4.load_seconds <= 4.0
    # End-to-end: near tie between Vertica+DR and Spark.
    ratio = vertica.total_seconds / spark.total_seconds
    assert 0.75 <= ratio <= 1.25
