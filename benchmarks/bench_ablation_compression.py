"""Ablation: block compression codec and chunk size on the VFT path.

VFT ships the database's compressed column blocks; this ablation measures
the functional path with each codec and with different buffering hints
(the ``chunk_rows`` partition-size hint of §3.1).
"""

import numpy as np
import pytest

from repro.dr import start_session
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster

ROWS = 40_000
FEATURES = 6


def build_cluster(codec: str):
    rng = np.random.default_rng(31)
    columns = {"k": rng.integers(0, 1_000_000, ROWS)}
    names = []
    for j in range(FEATURES):
        names.append(f"c{j}")
        columns[f"c{j}"] = rng.normal(size=ROWS)
    cluster = VerticaCluster(node_count=3, codec=codec)
    cluster.create_table_like("bench", columns, HashSegmentation("k"))
    cluster.bulk_load("bench", columns)
    return cluster, names


@pytest.mark.parametrize("codec", ["none", "zlib"])
def test_ablation_vft_by_codec(benchmark, codec):
    cluster, names = build_cluster(codec)
    with start_session(node_count=3, instances_per_node=2) as session:
        result = benchmark.pedantic(
            lambda: db2darray(cluster, "bench", names, session),
            rounds=3, iterations=1,
        )
        assert result.nrow == ROWS
    benchmark.extra_info["wire_bytes"] = int(
        cluster.telemetry.get("vft_bytes_sent"))


def test_ablation_zlib_shrinks_wire_bytes():
    baseline_cluster, names = build_cluster("none")
    compressed_cluster, _ = build_cluster("zlib")
    with start_session(node_count=3, instances_per_node=1) as session:
        db2darray(baseline_cluster, "bench", names, session)
        db2darray(compressed_cluster, "bench", names, session)
    raw = baseline_cluster.telemetry.get("vft_bytes_sent")
    compressed = compressed_cluster.telemetry.get("vft_bytes_sent")
    assert compressed < raw, "zlib must reduce bytes on the wire"


@pytest.mark.parametrize("chunk_rows", [256, 8192])
def test_ablation_vft_by_chunk_size(benchmark, chunk_rows):
    cluster, names = build_cluster("zlib")
    with start_session(node_count=3, instances_per_node=2) as session:
        result = benchmark.pedantic(
            lambda: db2darray(cluster, "bench", names, session,
                              chunk_rows=chunk_rows),
            rounds=3, iterations=1,
        )
        assert result.nrow == ROWS


def test_ablation_small_chunks_cost_more_frames():
    cluster, names = build_cluster("zlib")
    with start_session(node_count=3, instances_per_node=1) as session:
        db2darray(cluster, "bench", names, session, chunk_rows=256)
        small_bytes = cluster.telemetry.get("vft_bytes_sent")
        cluster.telemetry.reset()
        db2darray(cluster, "bench", names, session, chunk_rows=16_384)
        large_bytes = cluster.telemetry.get("vft_bytes_sent")
    # Smaller buffers mean more frame headers and worse compression ratios.
    assert small_bytes > large_bytes
