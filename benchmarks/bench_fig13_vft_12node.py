"""Figure 13: ODBC vs VFT on a larger cluster (12-node shape, up to 400 GB).

Real layer: a 6-node functional cluster loading a wider table both ways.
Paper-scale layer: the 100-400 GB series on 12 nodes with 288 connections.
"""

import pytest

from benchmarks.conftest import build_numeric_table
from repro.dr import start_session
from repro.perfmodel import model_vft_transfer, simulate_odbc_transfer
from repro.transfer import db2darray, load_via_parallel_odbc

ROWS = 60_000
FEATURES = 6


@pytest.fixture(scope="module")
def setup():
    cluster, names = build_numeric_table(6, ROWS, FEATURES, seed=13)
    session = start_session(node_count=6, instances_per_node=2)
    yield cluster, names, session
    session.shutdown()


def test_fig13_odbc_load(benchmark, setup):
    cluster, names, session = setup
    result = benchmark(
        lambda: load_via_parallel_odbc(cluster, "bench", names, session,
                                       connections=12)
    )
    assert result.nrow == ROWS


def test_fig13_vft_load(benchmark, setup):
    cluster, names, session = setup
    result = benchmark(lambda: db2darray(cluster, "bench", names, session))
    assert result.nrow == ROWS
    benchmark.extra_info.update({
        f"paper_{gb}gb_{kind}_s": round(seconds, 1)
        for gb in (100, 200, 300, 400)
        for kind, seconds in (
            ("odbc288", simulate_odbc_transfer(gb, 12, 288).total_seconds),
            ("vft", model_vft_transfer(gb, 12, 24).total_seconds),
        )
    })


def test_fig13_shape_400gb_under_10_minutes():
    assert model_vft_transfer(400, 12, 24).minutes < 10
    # and ODBC stays near the hour mark even with 288 connections
    assert simulate_odbc_transfer(400, 12, 288).minutes > 45


def test_fig13_shape_vft_scales_linearly_in_size():
    t100 = model_vft_transfer(100, 12, 24).total_seconds
    t400 = model_vft_transfer(400, 12, 24).total_seconds
    assert t400 / t100 == pytest.approx(4.0, rel=0.2)
