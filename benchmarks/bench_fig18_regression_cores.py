"""Figure 18: regression to convergence — R's QR vs DR's Newton-Raphson.

Real layer: lm() (explicit QR) vs hpdglm (distributed IRLS) on the same
100k x 7 data; the answers must agree to numerical precision even though the
algorithms differ — exactly the paper's point ("Even though the final answer
is the same, these techniques result in different running time").
"""

import numpy as np
import pytest

from repro.algorithms import hpdglm
from repro.dr import start_session
from repro.perfmodel import model_regression_dr, model_regression_r
from repro.rbase import lm
from repro.workloads import make_regression

ROWS = 100_000
FEATURES = 7


@pytest.fixture(scope="module")
def dataset():
    return make_regression(ROWS, FEATURES, noise_scale=0.3, seed=18)


def test_fig18_r_lm_qr(benchmark, dataset):
    fit = benchmark.pedantic(
        lambda: lm(dataset.features, dataset.responses), rounds=3, iterations=1)
    assert np.allclose(fit.coefficients[1:], dataset.true_coefficients, atol=0.01)
    benchmark.extra_info["paper_r_lm_s"] = round(
        model_regression_r(1e8, 7).total_seconds, 1)


def test_fig18_dr_newton_raphson(benchmark, dataset):
    with start_session(node_count=4, instances_per_node=1) as session:
        x = session.darray(npartitions=4)
        x.fill_from(dataset.features)
        y = session.darray(npartitions=4,
                           worker_assignment=[x.worker_of(i) for i in range(4)])
        boundaries = np.linspace(0, ROWS, 5).astype(int)
        for i in range(4):
            y.fill_partition(
                i, dataset.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = benchmark.pedantic(lambda: hpdglm(y, x), rounds=3, iterations=1)
    qr_fit = lm(dataset.features, dataset.responses)
    assert np.allclose(model.coefficients, qr_fit.coefficients, atol=1e-8), \
        "Newton-Raphson and QR must agree on the answer"
    benchmark.extra_info.update({
        f"paper_dr_{cores}cores_s": round(
            model_regression_dr(1e8, 7, cores=cores, iterations=2).total_seconds, 1)
        for cores in (1, 2, 4, 8, 12, 16, 24)
    })


def test_fig18_shape_dr_wins_even_single_core():
    r_time = model_regression_r(1e8, 7).total_seconds
    dr_1core = model_regression_dr(1e8, 7, cores=1, iterations=2).total_seconds
    dr_24core = model_regression_dr(1e8, 7, cores=24, iterations=2).total_seconds
    assert r_time >= 25 * 60         # "R takes more than 25 minutes"
    assert dr_1core < 10 * 60        # "less than 10 minutes even with one core"
    assert dr_24core < 60            # "less than a minute" at 24 cores
    assert 7 <= dr_1core / dr_24core <= 14   # "a 9x speedup"
