"""Ablation: streaming-pipeline batch size x queue depth.

Sweeps ``PipelineConfig(batch_rows, queue_depth)`` over the tentpole
workload — a full-table scan feeding ``ExportToDistributedR`` — and records
throughput next to the memory telemetry (``peak_batch_bytes``,
``pipeline_inflight_bytes_peak``).  The qualitative shape: peak in-flight
bytes grow with both knobs (more rows per batch, more batches queued),
while throughput is flat-ish past small batches — the knobs trade memory
for scheduling overhead, not correctness.
"""

import numpy as np
import pytest

from repro.dr import start_session
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, PipelineConfig, VerticaCluster

ROWS = 36_000
FEATURES = 4
NODES = 3
LOAD_ROUNDS = 4  # several bulk loads -> several row groups per segment


def build(mode: str = "streaming", batch_rows: int = 8192,
          queue_depth: int = 4) -> tuple[VerticaCluster, list[str]]:
    rng = np.random.default_rng(71)
    names = [f"c{j}" for j in range(FEATURES)]
    cluster = VerticaCluster(
        node_count=NODES,
        pipeline=PipelineConfig(mode=mode, batch_rows=batch_rows,
                                queue_depth=queue_depth),
    )
    per_round = ROWS // LOAD_ROUNDS
    first = {"k": rng.integers(0, 1_000_000, per_round),
             **{name: rng.normal(size=per_round) for name in names}}
    cluster.create_table_like("bench", first, HashSegmentation("k"))
    cluster.bulk_load("bench", first)
    for _ in range(LOAD_ROUNDS - 1):
        cluster.bulk_load("bench", {
            "k": rng.integers(0, 1_000_000, per_round),
            **{name: rng.normal(size=per_round) for name in names},
        })
    return cluster, names


def load_once(cluster: VerticaCluster, names: list[str]) -> None:
    with start_session(node_count=NODES, instances_per_node=2) as session:
        result = db2darray(cluster, "bench", names, session, chunk_rows=4096)
        assert result.nrow == ROWS


@pytest.mark.parametrize("batch_rows,queue_depth", [
    (1024, 2),
    (4096, 2),
    (4096, 8),
    (16384, 4),
])
def test_ablation_batchsize_queue_depth(benchmark, batch_rows, queue_depth):
    cluster, names = build(batch_rows=batch_rows, queue_depth=queue_depth)
    benchmark.pedantic(lambda: load_once(cluster, names),
                       rounds=3, iterations=1)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        mean_seconds = benchmark.stats.stats.mean
        benchmark.extra_info["rows_per_second"] = round(ROWS / mean_seconds)
    benchmark.extra_info.update({
        "batch_rows": batch_rows,
        "queue_depth": queue_depth,
        "peak_batch_bytes": int(cluster.telemetry.get("peak_batch_bytes")),
        "pipeline_inflight_bytes_peak": int(
            cluster.telemetry.get("pipeline_inflight_bytes_peak")),
        "batches_scanned": int(cluster.telemetry.get("batches_scanned")),
    })


def test_ablation_smaller_batches_lower_peak():
    peaks = {}
    for batch_rows in (1024, 16384):
        cluster, names = build(batch_rows=batch_rows, queue_depth=2)
        load_once(cluster, names)
        peaks[batch_rows] = cluster.telemetry.get("pipeline_inflight_bytes_peak")
    assert 0 < peaks[1024] < peaks[16384], peaks


def test_ablation_streaming_beats_eager_on_peak_memory():
    results = {}
    for mode in ("eager", "streaming"):
        cluster, names = build(mode=mode, batch_rows=2048, queue_depth=2)
        load_once(cluster, names)
        results[mode] = cluster.telemetry.get("pipeline_inflight_bytes_peak")
    assert 0 < results["streaming"] < results["eager"], results
