"""Serving layer under load: sustained QPS and tail latency at 100+ sessions.

The workload is the mixed traffic the paper's closing sections imply once
models are deployed in the database: mostly repeated OLAP aggregates (where
the epoch-keyed result cache should win), a steady stream of ``glmPredict``
UDTF scoring, and a trickle of ``INSERT``s that keeps invalidating the hot
cache keys.  Each session is one client thread pushing statements through
one `Server`; per-statement latencies give p50/p99 and the total gives QPS.
The run records everything via ``record_property``, so the figures land in
``BENCH_serving.json`` next to the metric deltas.

Correctness rides along: after the storm every hot SELECT served from the
result cache is re-checked bit-identical against direct uncached execution
through ``cluster.sql`` — the cache may only ever change *when* a query
runs, never what it answers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.algorithms.glm import GlmModel
from repro.deploy import deploy_model, grant_model
from repro.serving import PoolConfig, Server
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.models import Privilege

SESSIONS = 104
STATEMENTS_PER_SESSION = 8
ROWS = 4_000

OLAP_TEXTS = [
    "SELECT SUM(a) AS s, COUNT(*) AS n FROM pts",
    "SELECT AVG(b) AS m FROM pts",
    "SELECT MIN(a) AS lo, MAX(a) AS hi FROM pts",
    "SELECT COUNT(*) AS n FROM pts WHERE a > 0",
]
APPROX_TEXTS = [
    "SELECT COUNT(*) FROM pts WITHIN 10% ERROR",
    "SELECT COUNT(*) FROM pts WHERE a > 0 WITHIN 25% ERROR",
]
PREDICT_TEXT = ("SELECT glmPredict(a, b USING PARAMETERS model='m') "
                "OVER (PARTITION NODES) FROM pts")


def _build_cluster() -> VerticaCluster:
    rng = np.random.default_rng(17)
    columns = {
        "k": rng.integers(0, 10_000, ROWS),
        "a": rng.normal(size=ROWS),
        "b": rng.normal(size=ROWS),
    }
    cluster = VerticaCluster(node_count=3)
    cluster.create_table_like("pts", columns, HashSegmentation("k"))
    cluster.bulk_load("pts", columns)
    deploy_model(cluster, GlmModel(
        coefficients=np.array([0.2, 1.0, -1.0]), family="gaussian",
        link="identity", intercept=True, iterations=1, deviance=0.0,
        null_deviance=0.0, converged=True, n_observations=ROWS), "m")
    for i in range(8):
        grant_model(cluster, "m", f"u{i}")
    cluster.sql("CREATE SAMPLE pts_sample ON pts UNIFORM RATE 10% SEED 7")
    for i in range(8):
        cluster.aqp.grant("pts_sample", f"u{i}", Privilege.USAGE,
                          granting_user="dbadmin")
    return cluster


def _statement_for(session_index: int, step: int) -> str:
    """The mixed workload: ~50% OLAP, ~10% approximate aggregates,
    ~20% predict, ~20% trickle insert."""
    slot = (session_index + step) % 10
    if slot < 5:
        return OLAP_TEXTS[(session_index * 7 + step) % len(OLAP_TEXTS)]
    if slot < 6:
        return APPROX_TEXTS[(session_index + step) % len(APPROX_TEXTS)]
    if slot < 8:
        return PREDICT_TEXT
    return (f"INSERT INTO pts VALUES "
            f"({(session_index * 31 + step) % 10_000}, "
            f"{0.001 * session_index:.3f}, {0.002 * step:.3f})")


def test_serving_mixed_load_qps_p99(record_property):
    cluster = _build_cluster()
    server = Server(
        cluster,
        pools=[PoolConfig("serve", max_concurrency=8, queue_depth=256,
                          admission_timeout_seconds=30.0)],
        result_cache_bytes=32 * 1024 * 1024,
    )
    latencies: list[float] = []
    lock = threading.Lock()

    def client(session_index: int) -> int:
        served = 0
        with server.session(pool="serve", user=f"u{session_index % 8}") as s:
            mine = []
            for step in range(STATEMENTS_PER_SESSION):
                t0 = time.perf_counter()
                s.execute(_statement_for(session_index, step))
                mine.append(time.perf_counter() - t0)
                served += 1
            with lock:
                latencies.extend(mine)
        return served

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=SESSIONS) as pool:
        served = sum(pool.map(client, range(SESSIONS)))
    wall = time.perf_counter() - t0

    assert served == SESSIONS * STATEMENTS_PER_SESSION
    t = cluster.telemetry
    assert t.get("statements_served") == served
    assert t.get("statements_rejected") == 0
    assert t.get("sessions_active") == 0
    # The peak proves the sessions were genuinely concurrent.
    assert t.registry.gauge("sessions_active").peak >= 100
    assert t.get("result_cache_hits") > 0

    # Bit-identity: every hot cached SELECT equals uncached re-execution.
    assert t.get("aqp_rewrites") > 0  # approximate class was served
    with server.session(pool="serve", user="u0") as s:
        for sql in OLAP_TEXTS + APPROX_TEXTS + [PREDICT_TEXT]:
            hits_before = t.get("result_cache_hits")
            s.execute(sql)                       # warm (or refresh) the key
            cached = s.execute(sql)
            assert t.get("result_cache_hits") >= hits_before + 1
            direct = cluster.sql(sql)
            assert cached.column_names == direct.column_names
            for name in direct.column_names:
                a, b = cached.column(name), direct.column(name)
                assert a.dtype == b.dtype and np.array_equal(a, b)

    lat = np.sort(np.array(latencies))
    record_property("sessions", SESSIONS)
    record_property("statements", served)
    record_property("qps", round(served / wall, 1))
    record_property("p50_ms", round(float(np.percentile(lat, 50)) * 1e3, 3))
    record_property("p99_ms", round(float(np.percentile(lat, 99)) * 1e3, 3))
    record_property("plan_cache_hit_rate", round(
        t.get("plan_cache_hits")
        / max(1, t.get("plan_cache_hits") + t.get("plan_cache_misses")), 4))
    record_property("result_cache_hit_rate", round(
        t.get("result_cache_hits")
        / max(1, t.get("result_cache_hits") + t.get("result_cache_misses")), 4))
    server.close()


def test_serving_cache_ablation_hot_read(record_property):
    """The cache's speedup on a pure hot-read workload: the same aggregate
    from many sessions, cached vs bypassed (cold server per statement)."""
    cluster = _build_cluster()
    sql = OLAP_TEXTS[0]
    n = 200

    with Server(cluster, pools=[PoolConfig("hot", max_concurrency=8)]) as server:
        with server.session(pool="hot") as s:
            s.execute(sql)                        # populate the key
            t0 = time.perf_counter()
            for _ in range(n):
                s.execute(sql)
            cached_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        cluster.sql(sql)
    direct_wall = time.perf_counter() - t0

    record_property("hot_read_statements", n)
    record_property("cached_qps", round(n / cached_wall, 1))
    record_property("direct_qps", round(n / direct_wall, 1))
    record_property("speedup", round(direct_wall / cached_wall, 2))
    # The cached path must not be slower; it skips parse+analyze+execute.
    assert cached_wall < direct_wall
