"""Ablation: the "overwhelm the database" knee — connections vs scan slots.

Sweeps the ODBC connection count through the DES and locates where adding
connections stops helping (the paper's motivation for VFT issuing exactly
one query).  Also sweeps the per-node scan-slot capacity to show the knee
moves with server resources.
"""

import pytest

from repro.perfmodel import SL390, scaled_profile, simulate_odbc_transfer


def sweep_connections(profile, table_gb=150, nodes=5,
                      counts=(1, 5, 20, 40, 120, 288, 480)):
    return {
        count: simulate_odbc_transfer(table_gb, nodes, count, profile).total_seconds
        for count in counts
    }


def test_ablation_connection_sweep(benchmark):
    results = benchmark(lambda: sweep_connections(SL390))
    benchmark.extra_info.update(
        {f"odbc_{count}conn_s": round(seconds, 1)
         for count, seconds in results.items()}
    )
    # The knee: a moderate number of connections is fastest; both extremes
    # lose (one connection serializes, hundreds pay per-query probes).
    best = min(results, key=results.get)
    assert 5 <= best <= 120
    assert results[1] > results[best]
    assert results[480] > results[best]


def test_ablation_more_scan_slots_shift_the_knee():
    small = scaled_profile(SL390, speed=1.0, db_scan_slots_per_node=2)
    large = scaled_profile(SL390, speed=1.0, db_scan_slots_per_node=16)
    at_high_concurrency_small = simulate_odbc_transfer(150, 5, 120, small)
    at_high_concurrency_large = simulate_odbc_transfer(150, 5, 120, large)
    # More slots absorb more concurrent scans: faster at high concurrency.
    assert (at_high_concurrency_large.total_seconds
            < at_high_concurrency_small.total_seconds)
    # And queueing depth collapses.
    assert (at_high_concurrency_large.peak_queue_depth
            < at_high_concurrency_small.peak_queue_depth)


def test_ablation_probe_cost_drives_the_overwhelm():
    """Zeroing the segment-probe cost removes the degradation at high
    connection counts — direct evidence for the mechanism."""
    no_probe = scaled_profile(SL390, speed=1.0, odbc_probe_s_per_row=0.0)
    with_probe_results = sweep_connections(SL390, counts=(40, 480))
    no_probe_results = sweep_connections(no_probe, counts=(40, 480))
    assert with_probe_results[480] > with_probe_results[40]
    assert no_probe_results[480] <= no_probe_results[40] * 1.05
