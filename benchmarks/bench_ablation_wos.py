"""Ablation: trickle-insert throughput, WOS vs direct-to-ROS.

The reason the WOS exists: a trickle INSERT into read-optimized storage
pays a full encode (compression, zone maps, checksums) for a handful of
rows, while the write-optimized store just appends the batch and lets the
Tuple Mover amortize the encode over a big moveout.  This benchmark pushes
the same stream of small insert batches through both paths and measures
statements/second; the BENCH_ablation_wos.json datapoint written by
``conftest.bench_datapoint`` records the wall time and the metric deltas
(``wos_rows``, ``current_epoch``, scan counters) for each variant.
"""

import numpy as np
import pytest

from repro.storage import ColumnSchema, SqlType
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.txn import TupleMoverConfig

BATCHES = 200
ROWS_PER_BATCH = 8


def make_cluster() -> VerticaCluster:
    # Park the background mover: the ablation isolates the insert path
    # itself; moveout cost is measured separately below.
    cluster = VerticaCluster(
        node_count=3,
        mover=TupleMoverConfig(moveout_rows=1 << 30,
                               moveout_age_seconds=1e9),
    )
    cluster.create_table("trickle", [
        ColumnSchema("k", SqlType.INTEGER),
        ColumnSchema("v", SqlType.FLOAT),
    ], segmentation=HashSegmentation("k"))
    return cluster


def trickle_batches():
    rng = np.random.default_rng(44)
    return [
        {
            "k": rng.integers(0, 100_000, ROWS_PER_BATCH),
            "v": rng.normal(size=ROWS_PER_BATCH),
        }
        for _ in range(BATCHES)
    ]


def run_trickle(direct: bool) -> VerticaCluster:
    cluster = make_cluster()
    table = cluster.catalog.get_table("trickle")
    for batch in trickle_batches():
        table.insert(batch, direct=direct)
    return cluster


@pytest.mark.parametrize("path", ["wos", "direct_ros"])
def test_ablation_trickle_insert_path(benchmark, path):
    direct = path == "direct_ros"
    cluster = benchmark.pedantic(
        lambda: run_trickle(direct), rounds=3, iterations=1)
    table = cluster.catalog.get_table("trickle")
    assert table.row_count == BATCHES * ROWS_PER_BATCH
    if direct:
        assert sum(seg.wos_rows for seg in table.segments) == 0
    else:
        assert sum(seg.wos_rows for seg in table.segments) == \
            BATCHES * ROWS_PER_BATCH
    cluster.tuple_mover.stop()


def test_wos_trickle_is_faster_and_moveout_amortizes(benchmark):
    """The claim the WOS exists for: the trickle stream lands faster in
    the WOS than encoded straight to ROS, and one bulk moveout yields the
    same scannable table."""
    import time

    def timed(direct):
        start = time.perf_counter()
        cluster = run_trickle(direct)
        elapsed = time.perf_counter() - start
        return cluster, elapsed

    def both():
        ros_cluster, ros_seconds = timed(True)
        wos_cluster, wos_seconds = timed(False)
        moved = wos_cluster.tuple_mover.run_moveout()
        return ros_cluster, ros_seconds, wos_cluster, wos_seconds, moved

    ros_cluster, ros_seconds, wos_cluster, wos_seconds, moved = \
        benchmark.pedantic(both, rounds=2, iterations=1)
    assert moved == BATCHES * ROWS_PER_BATCH
    # Post-moveout, both paths answer identically.
    assert wos_cluster.sql("SELECT count(*) FROM trickle").scalar() == \
        ros_cluster.sql("SELECT count(*) FROM trickle").scalar()
    assert wos_cluster.sql("SELECT SUM(v) AS s FROM trickle").scalar() == \
        pytest.approx(ros_cluster.sql(
            "SELECT SUM(v) AS s FROM trickle").scalar())
    # The WOS path skips per-statement encodes; it must win clearly.
    assert wos_seconds < ros_seconds, (
        f"WOS trickle ({wos_seconds:.3f}s) should beat "
        f"direct-to-ROS ({ros_seconds:.3f}s)"
    )
    for cluster in (ros_cluster, wos_cluster):
        cluster.tuple_mover.stop()
