"""Ablation: incremental ``REFRESH MODEL`` vs full refit, by delta size.

The point of carrying additive sufficient statistics (docs/ml_architecture.md):
after a trickle of new rows, an incremental refresh scans only the delta
epochs (`Table.scan_delta`) and re-solves a p×p system, so its cost follows
the *trickle*; the full refit re-reads every visible row, so its cost
follows the *table*.  The sweep holds the base table fixed and grows the
delta; the refit arm is forced by a delete inside the window (the guard
that makes an insert-only delta untrustworthy).
"""

import numpy as np
import pytest

from repro.algorithms import LocalArray, hpdglm
from repro.deploy import deploy_model, load_model, refresh_model
from repro.storage import ColumnSchema, SqlType
from repro.vertica import VerticaCluster

BASE_ROWS = 40_000
FEATURES = 4
COEFFICIENTS = np.array([1.5, -2.0, 0.7, 0.3])


def _columns(rows: int, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(rows, FEATURES))
    noise = rng.normal(scale=0.1, size=rows)
    cols = {f"f{j}": features[:, j] for j in range(FEATURES)}
    cols["y"] = 0.5 + features @ COEFFICIENTS + noise
    return cols


def _deployed_cluster(delta_rows: int) -> VerticaCluster:
    """A cluster with a deployed, provenance-carrying GLM that is exactly
    one commit epoch (of ``delta_rows`` rows) stale."""
    cluster = VerticaCluster(node_count=3)
    feature_names = [f"f{j}" for j in range(FEATURES)]
    cluster.create_table("obs", [
        ColumnSchema(name, SqlType.FLOAT) for name in feature_names + ["y"]
    ])
    base = _columns(BASE_ROWS, seed=61)
    cluster.bulk_load("obs", base)

    nparts = cluster.node_count
    model = hpdglm(
        LocalArray(base["y"], nparts),
        LocalArray(np.column_stack([base[n] for n in feature_names]), nparts),
        family="gaussian",
    )
    deploy_model(cluster, model, "line", training={
        "table": "obs", "features": feature_names, "response": "y",
        "algorithm": "glm", "params": {"family": "gaussian"},
    })
    delta = _columns(delta_rows, seed=62)
    cluster.catalog.get_table("obs").insert_rows(
        np.column_stack([delta[n] for n in feature_names + ["y"]]).tolist())
    return cluster


@pytest.mark.parametrize("delta_rows", [100, 2_000])
def test_ablation_incremental_refresh_by_delta(benchmark, delta_rows):
    cluster = _deployed_cluster(delta_rows)
    result = benchmark.pedantic(
        lambda: refresh_model(cluster, "line"), rounds=1, iterations=1)
    assert result.strategy == "incremental"
    assert result.rows_folded == delta_rows  # cost follows the trickle
    refreshed = load_model(cluster, "line")
    assert refreshed.n_observations == BASE_ROWS + delta_rows
    assert np.allclose(refreshed.coefficients[1:], COEFFICIENTS, atol=0.05)


@pytest.mark.parametrize("delta_rows", [100, 2_000])
def test_ablation_full_refit_by_delta(benchmark, delta_rows):
    cluster = _deployed_cluster(delta_rows)
    # A few deleted rows inside the window poison the insert-only delta,
    # forcing the fallback this arm measures.
    ys = cluster.catalog.get_table("obs").scan_all(["y"])["y"]
    threshold = float(np.partition(ys, -3)[-3])
    deleted = int(cluster.sql(f"DELETE FROM obs WHERE y >= {threshold}").scalar())
    assert deleted >= 1
    result = benchmark.pedantic(
        lambda: refresh_model(cluster, "line"), rounds=1, iterations=1)
    assert result.strategy == "refit"
    # Cost follows the table: every surviving row is re-read.
    assert result.rows_folded == BASE_ROWS + delta_rows - deleted


def test_incremental_matches_refit_at_the_same_snapshot():
    """The ablation is only meaningful because both arms land on the same
    model: delta fold == full refit to float precision."""
    cluster = _deployed_cluster(500)
    refresh_model(cluster, "line")
    incremental = load_model(cluster, "line")

    table = cluster.catalog.get_table("obs")
    feature_names = [f"f{j}" for j in range(FEATURES)]
    cols = table.scan_all(feature_names + ["y"])
    nparts = cluster.node_count
    full = hpdglm(
        LocalArray(np.asarray(cols["y"]).reshape(-1, 1), nparts),
        LocalArray(np.column_stack([cols[n] for n in feature_names]), nparts),
        family="gaussian",
    )
    assert np.allclose(incremental.coefficients, full.coefficients, atol=1e-9)
    assert incremental.deviance == pytest.approx(full.deviance, abs=1e-6)
